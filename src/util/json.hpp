// A minimal JSON reader for the driver's own interchange files.
//
// The sweep runner writes results as JSON (driver/sweep_runner.cpp) and
// `macosim store import` reads them back into a campaign store; committed
// benchmark trajectories (BENCH_*.json) ride the same format through CI.
// This parser covers exactly RFC 8259 — objects, arrays, strings with
// escapes, numbers, true/false/null — with positions in error messages.
// It deliberately has no writer half: serialization stays with the code
// that owns each format, so there is exactly one writer per format. The
// one shared piece is json_escape below, because string escaping must be
// identical in every writer for this parser to read them all back.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace maco::util {

// One parsed JSON value. A tagged tree rather than a class hierarchy: the
// driver walks small documents (sweep results, benchmark trajectories)
// where simplicity beats pointer-chasing polymorphism.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Checked accessors; throw std::runtime_error naming the expected and
  // actual kind, so import errors point at the malformed field.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  // Object members in document order (duplicate keys keep every entry;
  // find() returns the first).
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  // nullptr when this is not an object or has no member `key`.
  const JsonValue* find(std::string_view key) const noexcept;

  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value);
  static JsonValue string(std::string value);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses one JSON document; trailing whitespace is allowed, trailing
// content is not. Throws std::runtime_error with a byte offset on
// malformed input.
JsonValue parse_json(std::string_view text);

// JSON string-body escaping (quotes, backslash, control characters);
// shared by every JSON writer in the tree.
std::string json_escape(const std::string& text);

}  // namespace maco::util
