#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace maco::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  MACO_ASSERT(!headers_.empty());
  aligns_[0] = Align::kLeft;  // first column is usually a label
}

void Table::add_row(std::vector<std::string> cells) {
  MACO_ASSERT_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

Table::RowBuilder& Table::RowBuilder::cell(int value) {
  return cell(std::to_string(value));
}

Table::RowBuilder& Table::RowBuilder::percent(double fraction, int precision) {
  return cell(format_double(fraction * 100.0, precision) + "%");
}

void Table::set_align(std::size_t column, Align align) {
  MACO_ASSERT(column < aligns_.size());
  aligns_[column] = align;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_cell = [&](const std::string& text, std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  auto print_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  if (!title.empty()) os << title << '\n';
  print_rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    print_cell(headers_[c], c);
    os << " |";
  }
  os << '\n';
  print_rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      print_cell(row[c], c);
      os << " |";
    }
    os << '\n';
  }
  print_rule();
}


void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    write_csv_cell(os, headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      write_csv_cell(os, row[c]);
    }
    os << '\n';
  }
}

}  // namespace maco::util
