#include "util/units.hpp"

#include <cstdio>

namespace maco::util {

namespace {

std::string scaled(double value, const char* const* suffixes, int count,
                   double base, const char* unit) {
  int idx = 0;
  while (value >= base && idx + 1 < count) {
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s%s", value, suffixes[idx], unit);
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static const char* const suffixes[] = {"", "Ki", "Mi", "Gi", "Ti"};
  return scaled(static_cast<double>(bytes), suffixes, 5, 1024.0, "B");
}

std::string format_flops(double flops_per_second) {
  static const char* const suffixes[] = {"", "K", "M", "G", "T", "P"};
  return scaled(flops_per_second, suffixes, 6, 1000.0, "FLOPS");
}

std::string format_bandwidth(double bytes_per_second) {
  static const char* const suffixes[] = {"", "K", "M", "G", "T"};
  return scaled(bytes_per_second, suffixes, 5, 1000.0, "B/s");
}

std::string format_frequency(double hertz) {
  static const char* const suffixes[] = {"", "K", "M", "G", "T"};
  return scaled(hertz, suffixes, 5, 1000.0, "Hz");
}

std::string format_time_ps(std::uint64_t picoseconds) {
  static const char* const suffixes[] = {"ps", "ns", "us", "ms", "s"};
  double value = static_cast<double>(picoseconds);
  int idx = 0;
  while (value >= 1000.0 && idx + 1 < 5) {
    value /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f %s", value, suffixes[idx]);
  return buf;
}

}  // namespace maco::util
