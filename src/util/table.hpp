// ASCII table formatting for bench output. The benches regenerate the
// paper's tables/figures as text, so aligned, stable formatting matters.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace maco::util {

enum class Align { kLeft, kRight };

// Row-oriented table; all formatting happens at print time.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Each add_row must supply exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  // Convenience: build a row from heterogeneous values.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder() { table_.add_row(std::move(cells_)); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string value);
    RowBuilder& cell(const char* value) { return cell(std::string(value)); }
    RowBuilder& cell(double value, int precision = 2);
    RowBuilder& cell(std::uint64_t value);
    RowBuilder& cell(int value);
    // Percentage with one decimal, e.g. 93.4%.
    RowBuilder& percent(double fraction, int precision = 1);

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  void set_align(std::size_t column, Align align);
  void print(std::ostream& os, const std::string& title = "") const;

  // RFC-4180-style CSV (header row first; cells containing commas, quotes
  // or newlines are quoted, embedded quotes doubled) — for piping bench
  // data into plotting tools.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

// Formats a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision);

// Writes one RFC-4180 CSV cell: fields containing commas, quotes or
// newlines are quoted, embedded quotes doubled.
void write_csv_cell(std::ostream& os, const std::string& cell);

}  // namespace maco::util
