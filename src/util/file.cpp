#include "util/file.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

namespace maco::util {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& reason) {
  throw FileError("cannot read '" + path + "': " + reason);
}

}  // namespace

std::string read_text_file(const std::string& path) {
  // An ifstream happily "reads" a directory as empty on some platforms;
  // catch that case explicitly so the diagnostic names the real problem.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && (st.st_mode & S_IFMT) == S_IFDIR) {
    fail(path, "is a directory");
  }
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(path, errno != 0 ? std::strerror(errno) : "cannot open");
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    fail(path, errno != 0 ? std::strerror(errno) : "read failed");
  }
  return text.str();
}

}  // namespace maco::util
