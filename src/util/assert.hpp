// Invariant checking for the simulator.
//
// MACO_ASSERT is active in all build types: a simulator that silently
// continues past a broken microarchitectural invariant produces numbers that
// look plausible and are wrong, which is worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace maco::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "MACO_ASSERT failed: %s\n  at %s:%d\n", expr, file,
               line);
  if (!msg.empty()) std::fprintf(stderr, "  %s\n", msg.c_str());
  std::abort();
}

}  // namespace maco::util

#define MACO_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::maco::util::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MACO_ASSERT_MSG(expr, ...)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream maco_assert_oss_;                             \
      maco_assert_oss_ << __VA_ARGS__;                                 \
      ::maco::util::assert_fail(#expr, __FILE__, __LINE__,             \
                                maco_assert_oss_.str());               \
    }                                                                  \
  } while (0)

// Unreachable code marker (e.g. exhaustive switch fallthrough).
#define MACO_UNREACHABLE(msg) \
  ::maco::util::assert_fail("unreachable", __FILE__, __LINE__, msg)
