// Deterministic pseudo-random source (xoshiro256**).
//
// The simulator must produce bit-identical results run-to-run, so all
// stochastic choices (test data, workload perturbation) go through this
// seeded generator rather than std::random_device.
#pragma once

#include <cstdint>
#include <limits>

namespace maco::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ull;
      w = (w ^ (w >> 27)) * 0x94d049bb133111ebull;
      s = w ^ (w >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound > 0. Uses rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double probability_true) noexcept {
    return next_double() < probability_true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace maco::util
