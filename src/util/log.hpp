// Minimal leveled logger.
//
// The simulator is quiet by default (benches must print only their tables);
// tests and examples can raise the level per component for debugging.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace maco::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

// Global log level; thread safety is not required (the simulator is
// single-threaded by design so event ordering stays deterministic).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
const char* log_level_name(LogLevel level) noexcept;

namespace detail {
void log_write(LogLevel level, std::string_view component,
               const std::string& message);
}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  if (level > log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  detail::log_write(level, component, oss.str());
}

}  // namespace maco::util

#define MACO_LOG_ERROR(component, ...) \
  ::maco::util::log(::maco::util::LogLevel::kError, component, __VA_ARGS__)
#define MACO_LOG_WARN(component, ...) \
  ::maco::util::log(::maco::util::LogLevel::kWarn, component, __VA_ARGS__)
#define MACO_LOG_INFO(component, ...) \
  ::maco::util::log(::maco::util::LogLevel::kInfo, component, __VA_ARGS__)
#define MACO_LOG_DEBUG(component, ...) \
  ::maco::util::log(::maco::util::LogLevel::kDebug, component, __VA_ARGS__)
#define MACO_LOG_TRACE(component, ...) \
  ::maco::util::log(::maco::util::LogLevel::kTrace, component, __VA_ARGS__)
