#include "util/log.hpp"

namespace maco::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

namespace detail {

void log_write(LogLevel level, std::string_view component,
               const std::string& message) {
  std::ostream& os = (level <= LogLevel::kWarn) ? std::cerr : std::clog;
  os << '[' << log_level_name(level) << "] " << component << ": " << message
     << '\n';
}

}  // namespace detail
}  // namespace maco::util
