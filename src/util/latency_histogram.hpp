// Log-bucketed latency histogram.
//
// Serving simulations record millions of per-request latencies spanning
// five-plus orders of magnitude (microsecond cache hits to multi-second
// saturated queues), and the metrics that matter are tail quantiles
// (p95/p99/p999). A uniform-bucket histogram (util::Histogram) cannot hold
// that range at useful resolution, so this one spaces bucket edges
// geometrically: every bucket spans the same RATIO, giving a constant
// relative error bound (~2.2% at 32 buckets per decade) from 1 ns-scale
// values to 10^4 seconds in a few hundred fixed-size bins. Recording is
// O(1) with no allocation after construction; quantiles interpolate
// geometrically inside the landing bucket and are exact at the recorded
// min/max.
#pragma once

#include <cstdint>
#include <vector>

namespace maco::util {

class LatencyHistogram {
 public:
  // Buckets cover [lo, hi) geometrically with `per_decade` buckets per
  // factor of 10, plus underflow/overflow bins. The defaults span 1e-6 to
  // 1e+7 in the caller's unit (e.g. milliseconds: 1 ns .. 10^4 s) at
  // ~2.2% relative resolution.
  explicit LatencyHistogram(double lo = 1e-6, double hi = 1e7,
                            unsigned per_decade = 32);

  // Samples must be finite; non-positive samples land in the underflow
  // bin (and still count toward quantiles as `min()`).
  void record(double sample) noexcept;
  // Pools another histogram's samples; geometries must match (asserted).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  // Quantile in [0, 1] (0.95 = p95). Empty histogram => 0. Monotone in q,
  // clamped to [min(), max()], geometric interpolation inside the bucket.
  double quantile(double q) const noexcept;

  const std::vector<std::uint64_t>& buckets() const noexcept {
    return bins_;
  }

  void reset() noexcept;

 private:
  std::size_t bucket_index(double sample) const noexcept;
  // [lower, upper) value range of a regular (non-under/overflow) bucket.
  double bucket_lower(std::size_t index) const noexcept;

  double lo_;
  double hi_;
  double log_lo_;
  double buckets_per_log10_;  // per_decade as a double
  std::size_t regular_buckets_;
  std::vector<std::uint64_t> bins_;  // [underflow, b0..bn-1, overflow]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace maco::util
