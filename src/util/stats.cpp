#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace maco::util {

void Scalar::record(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

void Scalar::reset() noexcept {
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      bins_(buckets + 2, 0) {
  MACO_ASSERT_MSG(hi > lo && buckets > 0,
                  "histogram range [" << lo << "," << hi << ") x " << buckets);
}

void Histogram::record(double sample) noexcept {
  summary_.record(sample);
  std::size_t bin;
  if (sample < lo_) {
    bin = 0;
  } else if (sample >= hi_) {
    bin = bins_.size() - 1;
  } else {
    bin = 1 + static_cast<std::size_t>((sample - lo_) / bucket_width_);
    bin = std::min(bin, bins_.size() - 2);
  }
  ++bins_[bin];
}

double Histogram::percentile(double p) const noexcept {
  if (summary_.count() == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(summary_.count());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (next >= target && bins_[i] > 0) {
      if (i == 0) return lo_;
      if (i == bins_.size() - 1) return summary_.max();
      const double frac = (target - cumulative) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i - 1) + frac) * bucket_width_;
    }
    cumulative = next;
  }
  return summary_.max();
}

void Histogram::reset() noexcept {
  std::fill(bins_.begin(), bins_.end(), 0);
  summary_.reset();
}

Counter& StatRegistry::counter(const std::string& name) {
  return counters_[name];
}

Scalar& StatRegistry::scalar(const std::string& name) {
  return scalars_[name];
}

Histogram& StatRegistry::histogram(const std::string& name, double lo,
                                   double hi, std::size_t buckets) {
  const auto [it, inserted] = histograms_.try_emplace(name, lo, hi, buckets);
  (void)inserted;
  return it->second;
}

void StatRegistry::report(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, s] : scalars_) {
    os << name << " count=" << s.count() << " mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " count=" << h.count() << " mean=" << h.mean()
       << " min=" << h.min() << " max=" << h.max()
       << " p50=" << h.percentile(0.50) << " p95=" << h.percentile(0.95)
       << '\n';
  }
}

void StatRegistry::reset_all() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, s] : scalars_) s.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace maco::util
