#include "util/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace maco::util {

LatencyHistogram::LatencyHistogram(double lo, double hi, unsigned per_decade)
    : lo_(lo),
      hi_(hi),
      log_lo_(std::log10(lo)),
      buckets_per_log10_(static_cast<double>(per_decade)) {
  MACO_ASSERT(lo > 0.0 && hi > lo && per_decade > 0);
  const double decades = std::log10(hi) - log_lo_;
  regular_buckets_ =
      static_cast<std::size_t>(std::ceil(decades * buckets_per_log10_));
  bins_.assign(regular_buckets_ + 2, 0);
}

std::size_t LatencyHistogram::bucket_index(double sample) const noexcept {
  if (!(sample >= lo_)) return 0;  // underflow (incl. non-positive)
  if (sample >= hi_) return regular_buckets_ + 1;
  const double offset = (std::log10(sample) - log_lo_) * buckets_per_log10_;
  std::size_t index = static_cast<std::size_t>(offset);
  // Floating-point edge guard: log10 rounding can land exactly-on-edge
  // samples one bucket high at the top of the range.
  if (index >= regular_buckets_) index = regular_buckets_ - 1;
  return index + 1;
}

double LatencyHistogram::bucket_lower(std::size_t index) const noexcept {
  return std::pow(10.0, log_lo_ + static_cast<double>(index - 1) /
                                      buckets_per_log10_);
}

void LatencyHistogram::record(double sample) noexcept {
  ++bins_[bucket_index(sample)];
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  MACO_ASSERT(bins_.size() == other.bins_.size() && lo_ == other.lo_ &&
              hi_ == other.hi_);
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank with interpolation
  // inside the landing bucket).
  const double rank = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (rank <= next || i + 1 == bins_.size()) {
      double lower;
      double upper;
      if (i == 0) {  // underflow: everything below lo_
        lower = min_;
        upper = lo_;
      } else if (i == regular_buckets_ + 1) {  // overflow
        lower = hi_;
        upper = max_;
      } else {
        lower = bucket_lower(i);
        upper = bucket_lower(i + 1);
      }
      lower = std::max(lower, min_);
      upper = std::min(upper, max_);
      if (!(upper > lower)) return std::clamp(lower, min_, max_);
      // Geometric interpolation matches the bucket spacing, so the
      // relative error stays bounded by the bucket ratio. Non-positive
      // bounds (underflow bin holding a zero sample) fall back to linear.
      const double frac = std::clamp(
          (rank - cumulative) / static_cast<double>(bins_[i]), 0.0, 1.0);
      const double value =
          lower > 0.0 ? lower * std::pow(upper / lower, frac)
                      : lower + (upper - lower) * frac;
      return std::clamp(value, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

void LatencyHistogram::reset() noexcept {
  std::fill(bins_.begin(), bins_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace maco::util
