// Bit-manipulation helpers used throughout the address/indexing logic.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace maco::util {

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

// floor(log2(x)); x must be non-zero.
constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

// log2(x) for power-of-two x.
inline unsigned log2_exact(std::uint64_t x) {
  MACO_ASSERT_MSG(is_pow2(x), "log2_exact requires a power of two, got " << x);
  return log2_floor(x);
}

// Alignment may be any non-zero value, not only powers of two (clock
// periods like 455 ps / 500 ps are common alignments here).
constexpr std::uint64_t align_down(std::uint64_t value,
                                   std::uint64_t alignment) noexcept {
  if (is_pow2(alignment)) return value & ~(alignment - 1);
  return value - value % alignment;
}

constexpr std::uint64_t align_up(std::uint64_t value,
                                 std::uint64_t alignment) noexcept {
  if (is_pow2(alignment)) return (value + alignment - 1) & ~(alignment - 1);
  const std::uint64_t rem = value % alignment;
  return rem == 0 ? value : value + (alignment - rem);
}

// Extract bits [lo, lo+width) of value.
constexpr std::uint64_t bits(std::uint64_t value, unsigned lo,
                             unsigned width) noexcept {
  return (value >> lo) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace maco::util
