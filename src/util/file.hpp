// Whole-file reading with one typed error path.
//
// Every subsystem that consumes a user-named file (the serve trace replay,
// the graph manifest loader, the driver's trace/import subcommands) reports
// a missing or unreadable file through the same exception with the same
// message shape — "cannot read 'PATH': reason" — so a bad path looks
// identical no matter which feature hit it.
#pragma once

#include <stdexcept>
#include <string>

namespace maco::util {

// Thrown by read_text_file; a runtime_error whose message already names
// the file, so callers can surface it verbatim.
class FileError : public std::runtime_error {
 public:
  explicit FileError(const std::string& what) : std::runtime_error(what) {}
};

// Reads `path` into a string (binary mode: bytes as stored). Throws
// FileError("cannot read 'PATH': reason") when the file is missing,
// unreadable or a directory.
std::string read_text_file(const std::string& path);

}  // namespace maco::util
