// Unit formatting/constants shared by configs and reports.
#pragma once

#include <cstdint>
#include <string>

namespace maco::util {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

// "48 KiB", "1.5 MiB" — powers of 1024.
std::string format_bytes(std::uint64_t bytes);

// "80.0 GFLOPS", "1.10 TFLOPS" — decimal scaling of FLOP/s.
std::string format_flops(double flops_per_second);

// "64.0 GB/s".
std::string format_bandwidth(double bytes_per_second);

// "2.50 GHz".
std::string format_frequency(double hertz);

// "1.234 ms" / "56.7 us" / "890 ns" from picoseconds.
std::string format_time_ps(std::uint64_t picoseconds);

}  // namespace maco::util
