// DNN inference workloads used in Fig. 8: ResNet-50, BERT and GPT-3, all in
// FP32, expressed as GEMM layer sequences with their non-GEMM post-ops.
//
// Since the graph frontend landed these are thin wrappers: each model is a
// manifest under examples/models/ (embedded into the library at build
// time) lowered by graph::lower(). Convolutions become GEMMs by im2col:
// M = output channels, N = batch × output H × W, K = input channels ×
// kernel H × W. Attention blocks expand into QKV/score/context/projection
// GEMMs plus FFN linears. See docs/GRAPHS.md for the manifest format.
#pragma once

#include <cstdint>

#include "workloads/gemm_workload.hpp"

namespace maco::wl {

// ResNet-50 inference (He et al., CVPR'16), conv+fc layers as GEMMs.
Workload resnet50(unsigned batch = 8);

// BERT-Base encoder stack (Devlin et al.): 12 layers, hidden 768, 12 heads.
Workload bert_base(unsigned batch = 8, unsigned seq_len = 384);

// GPT-3 175B decoder stack (Brown et al.): 96 layers, hidden 12288,
// 96 heads; one forward pass over `seq_len` tokens.
Workload gpt3(unsigned batch = 1, unsigned seq_len = 2048);

}  // namespace maco::wl
