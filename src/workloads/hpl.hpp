// HPL-style workload generation.
//
// The paper sources its GEMM kernels from the open-source HPL package
// (High-Performance Linpack). The dominant kernel in HPL's right-looking LU
// is the trailing-submatrix update: after factoring an nb-wide panel, the
// remaining (N - j·nb)² block receives a GEMM update of depth nb. This
// module reproduces that shape sequence for workload generation.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/gemm_workload.hpp"

namespace maco::wl {

// The trailing-update GEMM shapes of an N×N LU factorization with panel
// width nb (largest first), i.e. (N-nb)×(N-nb)×nb, (N-2nb)×..., down to nb.
std::vector<sa::TileShape> hpl_trailing_updates(std::uint64_t n,
                                                std::uint64_t nb = 256);

// Full workload wrapper (FP64, as HPL).
Workload hpl_workload(std::uint64_t n, std::uint64_t nb = 256);

// Total FLOPs of LU ≈ 2/3 N³ (sanity anchor for the shape list).
double lu_flops(std::uint64_t n);

}  // namespace maco::wl
