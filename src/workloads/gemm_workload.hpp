// Workload descriptions: sequences of GEMM layers with their trailing
// non-GEMM operations (the "GEMM+" structure of Section IV.B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sa/latency_model.hpp"
#include "sa/types.hpp"

namespace maco::wl {

// Non-GEMM work following a layer (executed by the CPU cores).
enum class PostOp : std::uint8_t {
  kNone,
  kBiasAdd,
  kRelu,
  kGelu,
  kSoftmax,    // rows × cols of the GEMM output
  kLayerNorm,
};

const char* post_op_name(PostOp op) noexcept;

struct Layer {
  std::string name;
  sa::TileShape shape;  // C (m×n) = A (m×k) × B (k×n)
  PostOp post = PostOp::kNone;
  unsigned repeat = 1;  // identical layers (e.g. transformer blocks)

  std::uint64_t flops() const noexcept { return shape.flops() * repeat; }
};

struct Workload {
  std::string name;
  sa::Precision precision = sa::Precision::kFp32;
  std::vector<Layer> layers;

  std::uint64_t total_flops() const noexcept;
  std::uint64_t total_macs() const noexcept;
  // Layers expanded by their repeat counts (shapes only).
  std::vector<sa::TileShape> expanded_shapes() const;
};

// Square GEMM of the given size (the HPL-style kernels of Figs. 6/7).
Workload square_gemm(std::uint64_t size,
                     sa::Precision precision = sa::Precision::kFp64);

// The matrix sizes the paper sweeps in Fig. 6 and Fig. 7.
std::vector<std::uint64_t> fig6_sizes();
std::vector<std::uint64_t> fig7_sizes();

}  // namespace maco::wl
