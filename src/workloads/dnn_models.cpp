#include "workloads/dnn_models.hpp"

namespace maco::wl {

namespace {

// Adds the GEMMs of one multi-head attention + FFN transformer block.
void add_transformer_block(Workload& w, const std::string& prefix,
                           std::uint64_t tokens, std::uint64_t hidden,
                           std::uint64_t heads, unsigned repeat) {
  const std::uint64_t head_dim = hidden / heads;
  const std::uint64_t ffn = 4 * hidden;
  // Fused QKV projection: [tokens, H] x [H, 3H].
  w.layers.push_back(Layer{prefix + ".qkv",
                           sa::TileShape{tokens, 3 * hidden, hidden},
                           PostOp::kBiasAdd, repeat});
  // Attention scores: per head [tokens, head_dim] x [head_dim, tokens],
  // batched over heads -> aggregate GEMM volume tokens × tokens × hidden.
  w.layers.push_back(Layer{prefix + ".scores",
                           sa::TileShape{tokens, tokens * heads, head_dim},
                           PostOp::kSoftmax, repeat});
  // Context: scores x V, same aggregate volume.
  w.layers.push_back(Layer{prefix + ".context",
                           sa::TileShape{tokens, head_dim * heads, tokens},
                           PostOp::kNone, repeat});
  // Output projection.
  w.layers.push_back(Layer{prefix + ".proj",
                           sa::TileShape{tokens, hidden, hidden},
                           PostOp::kLayerNorm, repeat});
  // FFN.
  w.layers.push_back(Layer{prefix + ".ffn1",
                           sa::TileShape{tokens, ffn, hidden},
                           PostOp::kGelu, repeat});
  w.layers.push_back(Layer{prefix + ".ffn2",
                           sa::TileShape{tokens, hidden, ffn},
                           PostOp::kLayerNorm, repeat});
}

// conv -> GEMM: M = out_ch, N = batch*out_hw², K = in_ch*k².
Layer conv(const std::string& name, unsigned batch, std::uint64_t out_ch,
           std::uint64_t out_hw, std::uint64_t in_ch, std::uint64_t kernel,
           unsigned repeat, PostOp post = PostOp::kRelu) {
  return Layer{name,
               sa::TileShape{out_ch, batch * out_hw * out_hw,
                             in_ch * kernel * kernel},
               post, repeat};
}

}  // namespace

Workload resnet50(unsigned batch) {
  Workload w;
  w.name = "Resnet-50";
  w.precision = sa::Precision::kFp32;
  // Stage table from He et al.; strides folded into output sizes.
  w.layers.push_back(conv("conv1", batch, 64, 112, 3, 7, 1));
  // conv2_x: 3 bottleneck blocks at 56×56 (64-64-256).
  w.layers.push_back(conv("conv2.reduce", batch, 64, 56, 256, 1, 2));
  w.layers.push_back(conv("conv2.reduce0", batch, 64, 56, 64, 1, 1));
  w.layers.push_back(conv("conv2.3x3", batch, 64, 56, 64, 3, 3));
  w.layers.push_back(conv("conv2.expand", batch, 256, 56, 64, 1, 3));
  // conv3_x: 4 blocks at 28×28 (128-128-512).
  w.layers.push_back(conv("conv3.reduce", batch, 128, 28, 512, 1, 3));
  w.layers.push_back(conv("conv3.reduce0", batch, 128, 28, 256, 1, 1));
  w.layers.push_back(conv("conv3.3x3", batch, 128, 28, 128, 3, 4));
  w.layers.push_back(conv("conv3.expand", batch, 512, 28, 128, 1, 4));
  // conv4_x: 6 blocks at 14×14 (256-256-1024).
  w.layers.push_back(conv("conv4.reduce", batch, 256, 14, 1024, 1, 5));
  w.layers.push_back(conv("conv4.reduce0", batch, 256, 14, 512, 1, 1));
  w.layers.push_back(conv("conv4.3x3", batch, 256, 14, 256, 3, 6));
  w.layers.push_back(conv("conv4.expand", batch, 1024, 14, 256, 1, 6));
  // conv5_x: 3 blocks at 7×7 (512-512-2048).
  w.layers.push_back(conv("conv5.reduce", batch, 512, 7, 2048, 1, 2));
  w.layers.push_back(conv("conv5.reduce0", batch, 512, 7, 1024, 1, 1));
  w.layers.push_back(conv("conv5.3x3", batch, 512, 7, 512, 3, 3));
  w.layers.push_back(conv("conv5.expand", batch, 2048, 7, 512, 1, 3));
  // Final FC (per batch of 1×1 features).
  w.layers.push_back(Layer{"fc", sa::TileShape{1000, batch, 2048},
                           PostOp::kNone, 1});
  return w;
}

Workload bert_base(unsigned batch, unsigned seq_len) {
  Workload w;
  w.name = "BERT";
  w.precision = sa::Precision::kFp32;
  const std::uint64_t tokens =
      static_cast<std::uint64_t>(batch) * seq_len;
  add_transformer_block(w, "encoder", tokens, 768, 12, 12);
  return w;
}

Workload gpt3(unsigned batch, unsigned seq_len) {
  Workload w;
  w.name = "GPT3";
  w.precision = sa::Precision::kFp32;
  const std::uint64_t tokens =
      static_cast<std::uint64_t>(batch) * seq_len;
  add_transformer_block(w, "decoder", tokens, 12288, 96, 96);
  return w;
}

}  // namespace maco::wl
