#include "workloads/dnn_models.hpp"

#include "graph/builtin_models.hpp"
#include "graph/lowering.hpp"

// The model tables live in examples/models/*.json (embedded into the
// library at build time) and lower through the graph frontend — the one
// lowering path every model takes. tests/test_graph.cpp pins these layer
// lists bit-identical to the pre-frontend hard-coded generators.
namespace maco::wl {

namespace {

Workload lower_builtin(const char* name, std::uint64_t batch,
                       std::uint64_t seq_len) {
  graph::LoweringOptions options;
  options.batch = batch;
  options.seq_len = seq_len;
  return graph::lower(graph::builtin_graph(name), options).workload;
}

}  // namespace

Workload resnet50(unsigned batch) {
  return lower_builtin("resnet50-stage", batch, 1);
}

Workload bert_base(unsigned batch, unsigned seq_len) {
  return lower_builtin("bert-block", batch, seq_len);
}

Workload gpt3(unsigned batch, unsigned seq_len) {
  return lower_builtin("gpt3-block", batch, seq_len);
}

}  // namespace maco::wl
