#include "workloads/hpl.hpp"

namespace maco::wl {

std::vector<sa::TileShape> hpl_trailing_updates(std::uint64_t n,
                                                std::uint64_t nb) {
  std::vector<sa::TileShape> shapes;
  for (std::uint64_t j = nb; j < n; j += nb) {
    const std::uint64_t trailing = n - j;
    shapes.push_back(sa::TileShape{trailing, trailing, nb});
  }
  return shapes;
}

Workload hpl_workload(std::uint64_t n, std::uint64_t nb) {
  Workload w;
  w.name = "hpl-" + std::to_string(n);
  w.precision = sa::Precision::kFp64;
  unsigned index = 0;
  for (const auto& shape : hpl_trailing_updates(n, nb)) {
    w.layers.push_back(Layer{"update" + std::to_string(index++), shape,
                             PostOp::kNone, 1});
  }
  return w;
}

double lu_flops(std::uint64_t n) {
  const double nd = static_cast<double>(n);
  return 2.0 / 3.0 * nd * nd * nd;
}

}  // namespace maco::wl
