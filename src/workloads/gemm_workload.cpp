#include "workloads/gemm_workload.hpp"

namespace maco::wl {

const char* post_op_name(PostOp op) noexcept {
  switch (op) {
    case PostOp::kNone: return "none";
    case PostOp::kBiasAdd: return "bias_add";
    case PostOp::kRelu: return "relu";
    case PostOp::kGelu: return "gelu";
    case PostOp::kSoftmax: return "softmax";
    case PostOp::kLayerNorm: return "layernorm";
  }
  return "?";
}

std::uint64_t Workload::total_flops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& layer : layers) total += layer.flops();
  return total;
}

std::uint64_t Workload::total_macs() const noexcept {
  return total_flops() / 2;
}

std::vector<sa::TileShape> Workload::expanded_shapes() const {
  std::vector<sa::TileShape> shapes;
  for (const auto& layer : layers) {
    for (unsigned r = 0; r < layer.repeat; ++r) shapes.push_back(layer.shape);
  }
  return shapes;
}

Workload square_gemm(std::uint64_t size, sa::Precision precision) {
  Workload w;
  w.name = "square-" + std::to_string(size);
  w.precision = precision;
  w.layers.push_back(Layer{"gemm", sa::TileShape{size, size, size},
                           PostOp::kNone, 1});
  return w;
}

std::vector<std::uint64_t> fig6_sizes() {
  return {256, 512, 1024, 2048, 4096, 9216};
}

std::vector<std::uint64_t> fig7_sizes() {
  return {256, 512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192, 9216};
}

}  // namespace maco::wl
