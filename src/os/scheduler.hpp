// A minimal operating-system layer over MacoSystem — the software the
// paper's "modified Linux" plays on the FPGA prototype.
//
// The scheduler owns a set of jobs (process + GEMM task list) and drives
// them round-robin over the chip's compute nodes, exercising exactly the
// multi-process machinery of Section III.C:
//   * context switches install a process's page table on a node while
//     earlier tasks from OTHER processes are still in flight — the MTQ/STQ
//     keep per-task state across switches (Fig. 3 state 3);
//   * completions are harvested with MA_READ / MA_STATE;
//   * MTQ exhaustion (MA_CFG returning the failure sentinel) backs off and
//     retries after a drain;
//   * page-fault exceptions are repaired by the demand pager (map the
//     missing pages, MA_CLEAR, re-dispatch) when enabled, or surfaced as
//     permanently failed tasks when not.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/maco_system.hpp"
#include "os/demand_pager.hpp"

namespace maco::os {

struct GemmTask {
  isa::GemmParams params;
  bool done = false;       // completed without exception
  bool failed = false;     // completed with an unrepairable exception
  unsigned dispatches = 0; // 1 normally; >1 after fault repair
};

struct Job {
  int id = 0;
  core::Process* process = nullptr;
  std::vector<GemmTask> tasks;

  bool finished() const noexcept {
    for (const auto& task : tasks) {
      if (!task.done && !task.failed) return false;
    }
    return true;
  }
};

struct SchedulerStats {
  std::uint64_t context_switches = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t pages_mapped = 0;
  std::uint64_t mtq_full_backoffs = 0;
  std::uint64_t scheduling_rounds = 0;
};

class Scheduler {
 public:
  struct Options {
    unsigned nodes = 1;            // compute nodes the OS schedules on
    unsigned slice_tasks = 2;      // tasks dispatched per slice
    bool demand_paging = true;     // repair page faults vs fail the task
    unsigned max_rounds = 10'000;  // runaway guard
  };

  Scheduler(core::MacoSystem& system, const Options& options);

  Job& add_job(core::Process& process);

  // Runs every job to completion (or permanent failure); returns stats.
  SchedulerStats run_all();

  // Deque: job references stay valid across add_job calls.
  const std::deque<Job>& jobs() const noexcept { return jobs_; }

 private:
  struct InFlight {
    cpu::Maid maid = 0;
    int job = 0;
    std::size_t task = 0;
  };

  // Dispatches up to slice_tasks of `job` on `node`; true if any dispatched.
  bool dispatch_slice(unsigned node, Job& job);
  // Harvests every in-flight task on `node`; repairs or finalizes.
  void harvest(unsigned node);

  core::MacoSystem& system_;
  Options options_;
  DemandPager pager_;
  std::deque<Job> jobs_;
  std::vector<std::vector<InFlight>> in_flight_;  // per node
  std::vector<std::size_t> rr_cursor_;            // per node: next job index
  SchedulerStats stats_;
};

}  // namespace maco::os
