#include "os/demand_pager.hpp"

#include "util/bits.hpp"

namespace maco::os {

std::uint64_t DemandPager::map_range(core::Process& process,
                                     vm::VirtAddr base, std::uint64_t bytes) {
  if (bytes == 0) return 0;
  std::uint64_t mapped = 0;
  const vm::VirtAddr first = util::align_down(base, vm::kPageSize);
  const vm::VirtAddr last =
      util::align_down(base + bytes - 1, vm::kPageSize);
  for (vm::VirtAddr page = first; page <= last; page += vm::kPageSize) {
    if (process.space->map_page(page)) ++mapped;
  }
  return mapped;
}

RepairReport DemandPager::repair_gemm(core::Process& process,
                                      const isa::GemmParams& params) {
  RepairReport report;
  const std::uint64_t elem = sa::element_bytes(params.precision);
  report.pages_mapped += map_range(
      process, params.a_base,
      static_cast<std::uint64_t>(params.m) * params.k * elem);
  report.pages_mapped += map_range(
      process, params.b_base,
      static_cast<std::uint64_t>(params.k) * params.n * elem);
  report.pages_mapped += map_range(
      process, params.c_base,
      static_cast<std::uint64_t>(params.m) * params.n * elem);
  return report;
}

}  // namespace maco::os
