#include "os/scheduler.hpp"

#include "util/assert.hpp"

namespace maco::os {

Scheduler::Scheduler(core::MacoSystem& system, const Options& options)
    : system_(system), options_(options), pager_(system) {
  MACO_ASSERT(options.nodes >= 1 && options.nodes <= system.node_count());
  MACO_ASSERT(options.slice_tasks >= 1);
  in_flight_.resize(options.nodes);
  rr_cursor_.assign(options.nodes, 0);
}

Job& Scheduler::add_job(core::Process& process) {
  Job job;
  job.id = static_cast<int>(jobs_.size());
  job.process = &process;
  jobs_.push_back(std::move(job));
  return jobs_.back();
}

bool Scheduler::dispatch_slice(unsigned node, Job& job) {
  cpu::CpuCore& cpu = system_.node(node).cpu();
  // Context switch: install the job's address space on this node. MTQ/STQ
  // entries of other processes are untouched (Section III.C).
  system_.schedule_process(node, *job.process);
  ++stats_.context_switches;

  unsigned dispatched = 0;
  for (std::size_t t = 0;
       t < job.tasks.size() && dispatched < options_.slice_tasks; ++t) {
    GemmTask& task = job.tasks[t];
    if (task.done || task.failed || task.dispatches > 0) continue;

    cpu.regs().write_param_block(10, task.params.pack());
    cpu.execute_source("ma_cfg x5, x10");
    const std::uint64_t maid = cpu.regs().read(5);
    if (maid == cpu::kMaidAllocFailed) {
      // MTQ full: back off; completions will free entries next harvest.
      ++stats_.mtq_full_backoffs;
      break;
    }
    ++task.dispatches;
    in_flight_[node].push_back(
        InFlight{static_cast<cpu::Maid>(maid), job.id, t});
    ++dispatched;
  }
  return dispatched > 0;
}

void Scheduler::harvest(unsigned node) {
  cpu::CpuCore& cpu = system_.node(node).cpu();
  std::vector<InFlight> still_running;
  for (const InFlight& flight : in_flight_[node]) {
    const cpu::MtqEntry& entry = cpu.mtq().entry(flight.maid);
    Job& job = jobs_[static_cast<std::size_t>(flight.job)];
    GemmTask& task = job.tasks[flight.task];

    if (!entry.done) {  // still executing; keep it
      still_running.push_back(flight);
      continue;
    }

    if (!entry.exception_en) {
      task.done = true;
      ++stats_.tasks_completed;
    } else if (entry.exception_type == cpu::ExceptionType::kPageFault &&
               options_.demand_paging) {
      // OS fault handler: map the missing pages, clear the entry, and mark
      // the task for re-dispatch on a later slice.
      const RepairReport report =
          pager_.repair_gemm(*job.process, task.params);
      stats_.pages_mapped += report.pages_mapped;
      ++stats_.faults_repaired;
      task.dispatches = 0;  // eligible again
      cpu.regs().write(9, flight.maid);
      cpu.execute_source("ma_clear x9");
      continue;
    } else {
      task.failed = true;
      ++stats_.tasks_failed;
    }
    // Release the MTQ entry (MA_STATE: query + release).
    cpu.regs().write(9, flight.maid);
    cpu.execute_source("ma_state x8, x9");
  }
  in_flight_[node] = std::move(still_running);
}

SchedulerStats Scheduler::run_all() {
  stats_ = SchedulerStats{};
  for (unsigned round = 0; round < options_.max_rounds; ++round) {
    ++stats_.scheduling_rounds;

    bool all_finished = true;
    for (const Job& job : jobs_) all_finished &= job.finished();
    if (all_finished) break;

    // Each node picks the next unfinished job round-robin and dispatches a
    // slice; different nodes advance independent cursors so jobs spread.
    for (unsigned node = 0; node < options_.nodes; ++node) {
      for (std::size_t probe = 0; probe < jobs_.size(); ++probe) {
        Job& job = jobs_[(rr_cursor_[node] + probe) % jobs_.size()];
        const bool advanced = !job.finished() && dispatch_slice(node, job);
        if (advanced) {
          rr_cursor_[node] =
              (rr_cursor_[node] + probe + 1) % jobs_.size();
          break;
        }
      }
    }

    // Let the MMAEs drain, then collect completions/faults everywhere.
    system_.run();
    for (unsigned node = 0; node < options_.nodes; ++node) harvest(node);
  }
  return stats_;
}

}  // namespace maco::os
