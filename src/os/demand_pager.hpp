// Demand paging for MMAE page faults.
//
// The paper's exception contract (Section III.C): a faulting task is
// terminated by the MMAE, the MTQ entry records exception_en/type, and
// software must inspect, recover and MA_CLEAR. This pager implements the
// recovery: given the faulting task's GEMM parameters it maps every
// missing page of the three dense operands (fresh zero frames — calloc
// semantics), so a single re-dispatch runs fault-free.
//
// Restart safety: repairs happen before the retry, and the retry re-runs
// the whole task. A fault can only interrupt a task before its first
// C-tile write-back IF the unmapped pages include that tile's operands;
// since the pager maps *all* operand pages at once, at most one retry ever
// happens, and tasks that already wrote partial results would have needed
// their C pages mapped — i.e. C faults strike on the read, before any
// write. (See test_os.cpp: RepairedAccumulateTaskIsNumericallyCorrect.)
#pragma once

#include <cstdint>

#include "core/maco_system.hpp"
#include "isa/params.hpp"

namespace maco::os {

struct RepairReport {
  std::uint64_t pages_mapped = 0;
  bool anything_repaired() const noexcept { return pages_mapped > 0; }
};

class DemandPager {
 public:
  explicit DemandPager(core::MacoSystem& system) : system_(system) {}

  // Maps every unmapped page of the task's A/B/C operands in `process`.
  RepairReport repair_gemm(core::Process& process,
                           const isa::GemmParams& params);

  // Maps every unmapped page of [base, base+bytes).
  std::uint64_t map_range(core::Process& process, vm::VirtAddr base,
                          std::uint64_t bytes);

 private:
  core::MacoSystem& system_;
};

}  // namespace maco::os
