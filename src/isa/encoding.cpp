#include "isa/encoding.hpp"

#include "util/assert.hpp"

namespace maco::isa {

std::uint32_t encode(const Instruction& instruction) {
  MACO_ASSERT_MSG(instruction.rd < kRegisterCount &&
                      instruction.rn < kRegisterCount,
                  "register index out of range");
  if (uses_param_block(instruction.op)) {
    MACO_ASSERT_MSG(instruction.rn + kParamRegisters <= kRegisterCount - 1,
                    "parameter block Rn..Rn+5 must fit below XZR");
  }
  return (kMpaisMajorOpcode << 24) |
         (static_cast<std::uint32_t>(instruction.op) << 21) |
         (static_cast<std::uint32_t>(instruction.rd) << 16) |
         static_cast<std::uint32_t>(instruction.rn);
}

std::optional<Instruction> decode(std::uint32_t word) {
  if ((word >> 24) != kMpaisMajorOpcode) return std::nullopt;
  const std::uint32_t func = (word >> 21) & 0x7;
  if (func > static_cast<std::uint32_t>(Mnemonic::kMaClear)) {
    return std::nullopt;
  }
  if (((word >> 5) & 0x7FF) != 0) return std::nullopt;  // reserved bits
  Instruction instruction;
  instruction.op = static_cast<Mnemonic>(func);
  instruction.rd = static_cast<std::uint8_t>((word >> 16) & 0x1F);
  instruction.rn = static_cast<std::uint8_t>(word & 0x1F);
  return instruction;
}

const char* mnemonic_name(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kMaMove: return "ma_move";
    case Mnemonic::kMaInit: return "ma_init";
    case Mnemonic::kMaStash: return "ma_stash";
    case Mnemonic::kMaCfg: return "ma_cfg";
    case Mnemonic::kMaRead: return "ma_read";
    case Mnemonic::kMaState: return "ma_state";
    case Mnemonic::kMaClear: return "ma_clear";
  }
  return "?";
}

}  // namespace maco::isa
