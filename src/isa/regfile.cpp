// RegFile is header-only; this translation unit anchors the module library.
#include "isa/regfile.hpp"
