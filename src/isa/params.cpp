#include "isa/params.hpp"

#include "util/assert.hpp"

namespace maco::isa {

namespace {

constexpr std::uint64_t pack32(std::uint32_t hi, std::uint32_t lo) noexcept {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
constexpr std::uint32_t hi32(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(v >> 32);
}
constexpr std::uint32_t lo32(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(v);
}

}  // namespace

ParamBlock GemmParams::pack() const {
  ParamBlock block{};
  block[0] = a_base;
  block[1] = b_base;
  block[2] = c_base;
  block[3] = pack32(m, n);
  block[4] = pack32(k, (static_cast<std::uint32_t>(precision) << 30) |
                           (accumulate ? (1u << 29) : 0u));
  block[5] = (static_cast<std::uint64_t>(tile_rows) << 48) |
             (static_cast<std::uint64_t>(tile_cols) << 32) |
             (static_cast<std::uint64_t>(inner_tile_rows) << 16) |
             inner_tile_cols;
  return block;
}

GemmParams GemmParams::unpack(const ParamBlock& block) {
  GemmParams p;
  p.a_base = block[0];
  p.b_base = block[1];
  p.c_base = block[2];
  p.m = hi32(block[3]);
  p.n = lo32(block[3]);
  p.k = hi32(block[4]);
  const std::uint32_t precision_bits = (lo32(block[4]) >> 30) & 0x3;
  MACO_ASSERT_MSG(precision_bits <= 2, "invalid precision encoding");
  p.precision = static_cast<sa::Precision>(precision_bits);
  p.accumulate = (lo32(block[4]) >> 29) & 1;
  p.tile_rows = static_cast<std::uint16_t>(block[5] >> 48);
  p.tile_cols = static_cast<std::uint16_t>(block[5] >> 32);
  p.inner_tile_rows = static_cast<std::uint16_t>(block[5] >> 16);
  p.inner_tile_cols = static_cast<std::uint16_t>(block[5]);
  return p;
}

ParamBlock MoveParams::pack() const {
  return ParamBlock{src, dst, pack32(rows, row_bytes), src_stride, dst_stride,
                    0};
}

MoveParams MoveParams::unpack(const ParamBlock& block) {
  MoveParams p;
  p.src = block[0];
  p.dst = block[1];
  p.rows = hi32(block[2]);
  p.row_bytes = lo32(block[2]);
  p.src_stride = block[3];
  p.dst_stride = block[4];
  return p;
}

ParamBlock InitParams::pack() const {
  return ParamBlock{dst, pack32(rows, row_bytes), stride, pattern, 0, 0};
}

InitParams InitParams::unpack(const ParamBlock& block) {
  InitParams p;
  p.dst = block[0];
  p.rows = hi32(block[1]);
  p.row_bytes = lo32(block[1]);
  p.stride = block[2];
  p.pattern = block[3];
  return p;
}

ParamBlock StashParams::pack() const {
  return ParamBlock{base, pack32(rows, row_bytes), stride,
                    lock ? 1ull : 0ull, 0, 0};
}

StashParams StashParams::unpack(const ParamBlock& block) {
  StashParams p;
  p.base = block[0];
  p.rows = hi32(block[1]);
  p.row_bytes = lo32(block[1]);
  p.stride = block[2];
  p.lock = block[3] & 1;
  return p;
}

}  // namespace maco::isa
