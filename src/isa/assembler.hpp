// Text assembler / disassembler for MPAIS.
//
// Accepts one instruction per line, e.g.:
//     ma_cfg   x5, x10      ; dispatch GEMM, params in x10..x15, MAID -> x5
//     ma_state x6, x5       ; query + release, state -> x6
// Comments start with ';' or '#'. Register names are x0..x30 and xzr.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/encoding.hpp"

namespace maco::isa {

struct AsmError {
  std::size_t line = 0;
  std::string message;
};

struct AsmResult {
  std::vector<Instruction> program;
  std::vector<std::uint32_t> words;
  std::vector<AsmError> errors;
  bool ok() const noexcept { return errors.empty(); }
};

AsmResult assemble(std::string_view source);

std::string disassemble(const Instruction& instruction);
std::string disassemble(const std::vector<Instruction>& program);

// Parses "x17" / "XZR" into a register index; returns -1 on failure.
int parse_register(std::string_view token);

}  // namespace maco::isa
