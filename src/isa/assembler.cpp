#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace maco::isa {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view strip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

int mnemonic_from(const std::string& name) {
  for (int m = 0; m <= static_cast<int>(Mnemonic::kMaClear); ++m) {
    if (name == mnemonic_name(static_cast<Mnemonic>(m))) return m;
  }
  return -1;
}

}  // namespace

int parse_register(std::string_view token) {
  const std::string t = to_lower(strip(token));
  if (t == "xzr") return static_cast<int>(kZeroRegister);
  if (t.size() < 2 || t[0] != 'x') return -1;
  int value = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) return -1;
    value = value * 10 + (t[i] - '0');
    // "x31" is not a valid ARMv8 spelling; register 31 is only "xzr".
    if (value >= static_cast<int>(kZeroRegister)) return -1;
  }
  return value;
}

AsmResult assemble(std::string_view source) {
  AsmResult result;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments.
    for (const char marker : {';', '#'}) {
      if (const auto c = line.find(marker); c != std::string_view::npos) {
        line = line.substr(0, c);
      }
    }
    line = strip(line);
    if (line.empty()) continue;

    // Tokenize: mnemonic, then comma-separated operands.
    const std::size_t space = line.find_first_of(" \t");
    const std::string mnemonic =
        to_lower(line.substr(0, space));
    std::string_view rest =
        space == std::string_view::npos ? std::string_view{}
                                        : strip(line.substr(space));

    const int op = mnemonic_from(mnemonic);
    if (op < 0) {
      result.errors.push_back({line_no, "unknown mnemonic '" + mnemonic + "'"});
      continue;
    }

    std::vector<std::string_view> operands;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      operands.push_back(strip(rest.substr(0, comma)));
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : strip(rest.substr(comma + 1));
    }
    // Drop empty operands from stray commas.
    std::erase_if(operands, [](std::string_view o) { return o.empty(); });

    Instruction instruction;
    instruction.op = static_cast<Mnemonic>(op);
    const bool single_operand = instruction.op == Mnemonic::kMaClear;
    const std::size_t expected = single_operand ? 1 : 2;
    if (operands.size() != expected) {
      std::ostringstream oss;
      oss << mnemonic << " expects " << expected << " operand(s), got "
          << operands.size();
      result.errors.push_back({line_no, oss.str()});
      continue;
    }

    if (single_operand) {
      // MA_CLEAR Rn: the MAID register (Table II usage "MA_CLEAR, Rn").
      const int rn = parse_register(operands[0]);
      if (rn < 0) {
        result.errors.push_back({line_no, "bad register"});
        continue;
      }
      instruction.rd = kZeroRegister;
      instruction.rn = static_cast<std::uint8_t>(rn);
    } else {
      const int rd = parse_register(operands[0]);
      const int rn = parse_register(operands[1]);
      if (rd < 0 || rn < 0) {
        result.errors.push_back({line_no, "bad register"});
        continue;
      }
      instruction.rd = static_cast<std::uint8_t>(rd);
      instruction.rn = static_cast<std::uint8_t>(rn);
    }
    if (uses_param_block(instruction.op) &&
        instruction.rn + kParamRegisters > kRegisterCount - 1) {
      result.errors.push_back(
          {line_no, "parameter block Rn..Rn+5 must fit below xzr"});
      continue;
    }
    result.program.push_back(instruction);
    result.words.push_back(encode(instruction));
  }
  return result;
}

std::string disassemble(const Instruction& instruction) {
  std::ostringstream oss;
  oss << mnemonic_name(instruction.op) << ' ';
  auto reg = [](unsigned r) {
    if (r == kZeroRegister) return std::string("xzr");
    std::string name = "x";
    name += std::to_string(r);
    return name;
  };
  if (instruction.op == Mnemonic::kMaClear) {
    oss << reg(instruction.rn);
  } else {
    oss << reg(instruction.rd) << ", " << reg(instruction.rn);
  }
  return oss.str();
}

std::string disassemble(const std::vector<Instruction>& program) {
  std::string out;
  for (const auto& instruction : program) {
    out += disassemble(instruction);
    out += '\n';
  }
  return out;
}

}  // namespace maco::isa
