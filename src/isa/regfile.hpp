// ARMv8-style general-purpose register file (X0..X30, XZR).
#pragma once

#include <array>
#include <cstdint>

#include "isa/encoding.hpp"
#include "util/assert.hpp"

namespace maco::isa {

class RegFile {
 public:
  std::uint64_t read(unsigned index) const {
    MACO_ASSERT_MSG(index < kRegisterCount, "register X" << index);
    return index == kZeroRegister ? 0 : regs_[index];
  }

  void write(unsigned index, std::uint64_t value) {
    MACO_ASSERT_MSG(index < kRegisterCount, "register X" << index);
    if (index != kZeroRegister) regs_[index] = value;
  }

  // Reads the six-register parameter block Rn..Rn+5 (MA_CFG convention).
  std::array<std::uint64_t, kParamRegisters> read_param_block(
      unsigned rn) const {
    std::array<std::uint64_t, kParamRegisters> block{};
    for (unsigned i = 0; i < kParamRegisters; ++i) block[i] = read(rn + i);
    return block;
  }

  void write_param_block(
      unsigned rn, const std::array<std::uint64_t, kParamRegisters>& block) {
    for (unsigned i = 0; i < kParamRegisters; ++i) write(rn + i, block[i]);
  }

 private:
  std::array<std::uint64_t, kRegisterCount> regs_{};
};

}  // namespace maco::isa
