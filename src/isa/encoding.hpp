// MPAIS — Matrix Processing Assist Instruction Set (paper Table II).
//
// Seven non-privileged instructions extending ARMv8, encoded as 32-bit words
// in a reserved major-opcode space:
//
//   [31:24] 0xC7 (MPAIS major opcode)
//   [23:21] func3 (instruction selector)
//   [20:16] Rd    (destination: receives the MAID / queried state)
//   [15:5]  reserved, must be zero
//   [4:0]   Rn    (first of the six parameter registers Rn..Rn+5,
//                  or the MAID register for task-management ops)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace maco::isa {

enum class Mnemonic : std::uint8_t {
  kMaMove = 0,   // copy data from source address to destination address
  kMaInit = 1,   // set data in destination space to zeros
  kMaStash = 2,  // prefetch from external memory into the L3 cache
  kMaCfg = 3,    // request an MTQ entry and dispatch a GEMM task
  kMaRead = 4,   // obtain the execution state of a GEMM task
  kMaState = 5,  // obtain state and release the MTQ entry
  kMaClear = 6,  // clear an MTQ entry (exception recovery)
};

inline constexpr std::uint32_t kMpaisMajorOpcode = 0xC7;
inline constexpr unsigned kRegisterCount = 32;  // X0..X30 + XZR(31)
inline constexpr unsigned kZeroRegister = 31;
// MA_CFG et al. read six successive registers Rn..Rn+5.
inline constexpr unsigned kParamRegisters = 6;

struct Instruction {
  Mnemonic op = Mnemonic::kMaMove;
  std::uint8_t rd = 0;
  std::uint8_t rn = 0;

  bool operator==(const Instruction&) const = default;
};

// Returns the 32-bit encoding; validates register indices.
std::uint32_t encode(const Instruction& instruction);

// Decodes a word; nullopt if it is not a valid MPAIS instruction.
std::optional<Instruction> decode(std::uint32_t word);

const char* mnemonic_name(Mnemonic m) noexcept;

// True for the data-migration / GEMM ops that consume Rn..Rn+5.
constexpr bool uses_param_block(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kMaMove:
    case Mnemonic::kMaInit:
    case Mnemonic::kMaStash:
    case Mnemonic::kMaCfg:
      return true;
    default:
      return false;
  }
}

}  // namespace maco::isa
