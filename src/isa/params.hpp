// Parameter-block layouts for MPAIS instructions.
//
// Before issuing MA_CFG / MA_MOVE / MA_INIT / MA_STASH, software loads six
// successive general registers Rn..Rn+5 with the operation's parameters
// (paper Section III.B). These structs define the packing and provide
// pack/unpack marshalling; the STQ decodes the same layout on the MMAE side.
#pragma once

#include <array>
#include <cstdint>

#include "isa/encoding.hpp"
#include "sa/types.hpp"

namespace maco::isa {

using ParamBlock = std::array<std::uint64_t, kParamRegisters>;

// MA_CFG: a tile-GEMM task, C (M×N) [+]= A (M×K) * B (K×N), row-major dense.
//
//   R0  virtual base address of A
//   R1  virtual base address of B
//   R2  virtual base address of C
//   R3  [63:32] M          [31:0] N
//   R4  [63:32] K          [31:30] precision  [29] accumulate  [28:0] rsvd
//   R5  [63:48] Tr  [47:32] Tc  [31:16] ttr  [15:0] ttc   (two-level tiling)
struct GemmParams {
  std::uint64_t a_base = 0;
  std::uint64_t b_base = 0;
  std::uint64_t c_base = 0;
  std::uint32_t m = 0;
  std::uint32_t n = 0;
  std::uint32_t k = 0;
  sa::Precision precision = sa::Precision::kFp64;
  bool accumulate = true;
  std::uint16_t tile_rows = 1024;       // Tr: first-level tile
  std::uint16_t tile_cols = 1024;       // Tc
  std::uint16_t inner_tile_rows = 64;   // ttr: second-level tile
  std::uint16_t inner_tile_cols = 64;   // ttc

  ParamBlock pack() const;
  static GemmParams unpack(const ParamBlock& block);
  bool operator==(const GemmParams&) const = default;
};

// MA_MOVE: strided 2D copy (rows × row_bytes) from src to dst.
//
//   R0 src base   R1 dst base
//   R2 [63:32] rows  [31:0] row_bytes
//   R3 src stride (bytes)   R4 dst stride (bytes)   R5 reserved
struct MoveParams {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint32_t rows = 1;
  std::uint32_t row_bytes = 0;
  std::uint64_t src_stride = 0;
  std::uint64_t dst_stride = 0;

  ParamBlock pack() const;
  static MoveParams unpack(const ParamBlock& block);
  bool operator==(const MoveParams&) const = default;
};

// MA_INIT: zero (or pattern-fill) a strided 2D region.
//
//   R0 dst base
//   R1 [63:32] rows  [31:0] row_bytes
//   R2 stride   R3 64-bit fill pattern (0 for the paper's "set to zeros")
//   R4, R5 reserved
struct InitParams {
  std::uint64_t dst = 0;
  std::uint32_t rows = 1;
  std::uint32_t row_bytes = 0;
  std::uint64_t stride = 0;
  std::uint64_t pattern = 0;

  ParamBlock pack() const;
  static InitParams unpack(const ParamBlock& block);
  bool operator==(const InitParams&) const = default;
};

// MA_STASH: prefetch a strided 2D region into the L3 cache, optionally
// locking the lines there (paper Section IV.B data prefetch and locking).
//
//   R0 base
//   R1 [63:32] rows  [31:0] row_bytes
//   R2 stride   R3 [0] lock
//   R4, R5 reserved
struct StashParams {
  std::uint64_t base = 0;
  std::uint32_t rows = 1;
  std::uint32_t row_bytes = 0;
  std::uint64_t stride = 0;
  bool lock = false;

  ParamBlock pack() const;
  static StashParams unpack(const ParamBlock& block);
  bool operator==(const StashParams&) const = default;
};

}  // namespace maco::isa
