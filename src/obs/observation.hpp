// Observability data captured from one detailed-machine run.
//
// A RunObservation is the neutral hand-off between the layers that RECORD
// (core/detailed_runner, serve's detailed cost oracle) and the layers that
// RENDER (obs::add_counter_metrics into ScenarioResult metrics,
// obs::to_perfetto_json into a trace file). It is plain data on purpose:
// counters are a dotted-name -> u64 map so same-seed runs dump
// bit-identically, spans carry raw engine timestamps, and the NoC section
// mirrors noc::IcntModel's directed-link layout (link = node*5 + dir).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace maco::obs {

// One closed interval of work on a named track ("node3.mmae",
// "instance0", "tenant2"). Timestamps are engine picoseconds.
struct SpanRec {
  std::string track;
  std::string name;
  sim::TimePs start = 0;
  sim::TimePs end = 0;
};

// Directed-link order within a node, matching noc/icnt.cpp's routing
// enum: link index = node*5 + dir.
inline constexpr const char* kLinkDirNames[5] = {"eject", "north", "south",
                                                 "east", "west"};
inline constexpr unsigned kLinksPerNode = 5;

struct LinkTrafficRec {
  std::uint64_t flits = 0;     // payload+header flit equivalents
  sim::TimePs busy_ps = 0;     // total time the link carried them
};

// Per-link NoC traffic over an observation window (the run's makespan).
struct NocTraffic {
  unsigned width = 0;
  unsigned height = 0;
  sim::TimePs window_ps = 0;
  std::vector<LinkTrafficRec> links;  // size width*height*kLinksPerNode

  bool present() const noexcept { return !links.empty(); }
};

struct RunObservation {
  bool want_counters = false;  // collect registry counters + NoC traffic
  bool want_trace = false;     // collect spans

  std::map<std::string, std::uint64_t> counters;
  std::vector<SpanRec> spans;
  NocTraffic noc;

  // Accumulates `other` into this observation: counters and link traffic
  // sum, spans append shifted by `span_offset_ps`, windows add. Used when
  // one sweep point runs several machines back to back (per-layer
  // detailed runs, the serve oracle's per-batch-size measurements).
  void merge(const RunObservation& other, sim::TimePs span_offset_ps);
};

}  // namespace maco::obs
