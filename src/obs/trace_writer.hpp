// Chrome/Perfetto trace serialization for RunObservations.
//
// Emits the JSON object form of the Trace Event Format: spans become
// complete ("X") events with ts/dur in microseconds and the track string
// as tid, which chrome://tracing and Perfetto both render as one row per
// track. The observation's NoC traffic rides along under a top-level
// "maco" key — foreign keys are explicitly allowed by the format and
// ignored by the viewers, and `macosim trace` reads them back for the
// link-utilization heatmap.
#pragma once

#include <string>

#include "obs/observation.hpp"

namespace maco::obs {

// One self-contained JSON document; parseable by util::parse_json.
std::string to_perfetto_json(const RunObservation& observation);

}  // namespace maco::obs
