#include "obs/observation.hpp"

namespace maco::obs {

void RunObservation::merge(const RunObservation& other,
                           sim::TimePs span_offset_ps) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const SpanRec& span : other.spans) {
    spans.push_back(SpanRec{span.track, span.name,
                            span.start + span_offset_ps,
                            span.end + span_offset_ps});
  }
  if (other.noc.present()) {
    if (!noc.present()) {
      noc.width = other.noc.width;
      noc.height = other.noc.height;
      noc.links.resize(other.noc.links.size());
    }
    if (noc.links.size() == other.noc.links.size()) {
      for (std::size_t i = 0; i < noc.links.size(); ++i) {
        noc.links[i].flits += other.noc.links[i].flits;
        noc.links[i].busy_ps += other.noc.links[i].busy_ps;
      }
    }
    noc.window_ps += other.noc.window_ps;
  }
}

}  // namespace maco::obs
