#include "obs/trace_writer.hpp"

#include <sstream>

#include "util/json.hpp"

namespace maco::obs {

std::string to_perfetto_json(const RunObservation& observation) {
  std::ostringstream out;
  out.precision(15);  // keep full ps resolution through the us timestamps
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  for (const SpanRec& span : observation.spans) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << util::json_escape(span.name)
        << "\", \"cat\": \"maco\", \"ph\": \"X\", \"pid\": 0, \"tid\": \""
        << util::json_escape(span.track)
        << "\", \"ts\": " << static_cast<double>(span.start) / 1e6
        << ", \"dur\": " << static_cast<double>(span.end - span.start) / 1e6
        << "}";
  }
  out << "\n]";
  if (observation.noc.present()) {
    out << ",\n\"maco\": {\"noc\": {\"width\": " << observation.noc.width
        << ", \"height\": " << observation.noc.height
        << ", \"window_ps\": " << observation.noc.window_ps
        << ", \"links\": [";
    bool first_link = true;
    for (std::size_t i = 0; i < observation.noc.links.size(); ++i) {
      const LinkTrafficRec& link = observation.noc.links[i];
      if (link.flits == 0) continue;
      if (!first_link) out << ",";
      first_link = false;
      out << "\n  {\"node\": " << i / kLinksPerNode << ", \"dir\": \""
          << kLinkDirNames[i % kLinksPerNode]
          << "\", \"flits\": " << link.flits
          << ", \"busy_ps\": " << link.busy_ps << "}";
    }
    out << "\n]}}";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace maco::obs
