// Host self-profiling: wall-time phase timers for one sweep point.
//
// The sweep runner installs a thread-local HostPhaseProfile sink around a
// scenario run; the detailed runner and the serve cost oracle bracket
// their setup/sim/collect phases with ScopedPhase. When no sink is
// installed (profile=off, every non-driver caller) ScopedPhase is a
// no-op: it never reads the clock, so the default path pays nothing.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace maco::obs {

class HostPhaseProfile {
 public:
  void add(const std::string& phase, double ms) { phases_[phase] += ms; }
  // 0.0 when the phase never ran.
  double ms(const std::string& phase) const noexcept;
  const std::map<std::string, double>& phases() const noexcept {
    return phases_;
  }

 private:
  std::map<std::string, double> phases_;
};

// Installs `profile` as this thread's phase sink for the guard's lifetime
// and restores the previous sink on destruction.
class ScopedHostProfile {
 public:
  explicit ScopedHostProfile(HostPhaseProfile* profile);
  ~ScopedHostProfile();
  ScopedHostProfile(const ScopedHostProfile&) = delete;
  ScopedHostProfile& operator=(const ScopedHostProfile&) = delete;

 private:
  HostPhaseProfile* previous_;
};

// Accumulates the guarded region's wall time into the installed sink
// under `phase` ("setup", "sim", "collect"); no-op without a sink.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* phase);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  // Records the elapsed time now and disarms the destructor — for phases
  // that end mid-scope (the next phase starts in the same block).
  void stop();

 private:
  const char* phase_;
  HostPhaseProfile* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace maco::obs
