#include "obs/host_profile.hpp"

namespace maco::obs {
namespace {

thread_local HostPhaseProfile* g_active_profile = nullptr;

}  // namespace

double HostPhaseProfile::ms(const std::string& phase) const noexcept {
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0.0 : it->second;
}

ScopedHostProfile::ScopedHostProfile(HostPhaseProfile* profile)
    : previous_(g_active_profile) {
  g_active_profile = profile;
}

ScopedHostProfile::~ScopedHostProfile() { g_active_profile = previous_; }

ScopedPhase::ScopedPhase(const char* phase)
    : phase_(phase), sink_(g_active_profile) {
  if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() { stop(); }

void ScopedPhase::stop() {
  if (sink_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  sink_->add(phase_,
             std::chrono::duration<double, std::milli>(elapsed).count());
  sink_ = nullptr;
}

}  // namespace maco::obs
