// obs::Collector — rolls component counters up into registry entries,
// RunObservations and typed ScenarioResult metrics.
//
// Components count unconditionally (a cache always knows its hit count);
// what profile=counters adds is the PUBLICATION step after a run:
// publish_counters walks the machine and registers every counter in the
// engine's StatRegistry under hierarchical dotted names
// ("node3.cpu.l2.hits", "dram0.row_conflicts", "noc.link17.flits"), and
// collect additionally snapshots them — plus per-link NoC traffic — into
// a RunObservation. add_counter_metrics then derives the headline rates
// (l2_hit_rate, dram_row_hit_rate, noc_max_link_util, ...) that flow
// through CSV/JSON, the campaign store and `report --compare`. Everything
// here runs after the engine has quiesced, so it cannot perturb timing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/observation.hpp"

namespace maco::core {
class MacoSystem;
}
namespace maco::exp {
struct ScenarioResult;
}

namespace maco::obs {

// Registers every component counter of `system` in the engine's
// StatRegistry (dotted names, see docs/OBSERVABILITY.md for the
// catalogue) and records the per-link occupancy histogram
// "noc.link_occupancy" when link stats are enabled. Idempotent per value:
// re-publishing overwrites with the current snapshot rather than
// double-counting.
void publish_counters(core::MacoSystem& system);

// publish_counters + snapshot: accumulates the registry's counters into
// `out.counters` (summing, so several machines can fold into one
// observation) and captures per-link NoC traffic into `out.noc` with the
// engine's current time as the window.
void collect(core::MacoSystem& system, RunObservation& out);

// Derived headline metrics from a collected observation. Rates are only
// emitted when their denominator is non-zero, so a run that never touched
// a component does not report a fake 0% rate.
void add_counter_metrics(exp::ScenarioResult& result,
                         const RunObservation& observation);

// Sum of every counter whose dotted name starts with `prefix` AND ends
// with `suffix` (either may be empty). Exposed for tests.
std::uint64_t sum_counters(
    const std::map<std::string, std::uint64_t>& counters,
    std::string_view prefix, std::string_view suffix);

}  // namespace maco::obs
