#include "obs/collector.hpp"

#include <algorithm>
#include <vector>

#include "core/compute_node.hpp"
#include "core/maco_system.hpp"
#include "cpu/core.hpp"
#include "cpu/mmu.hpp"
#include "cpu/mtq.hpp"
#include "exp/results.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "mem/queued_dram.hpp"
#include "mmae/accelerator_controller.hpp"
#include "noc/icnt.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "vm/matlb.hpp"
#include "vm/tlb.hpp"
#include "vm/walker.hpp"

namespace maco::obs {
namespace {

// Publication is a snapshot, not an increment: re-publishing after more
// work replaces each value with the component's current count.
void set_counter(util::StatRegistry& stats, const std::string& name,
                 std::uint64_t value) {
  util::Counter& counter = stats.counter(name);
  counter.reset();
  counter.inc(value);
}

void publish_cache(util::StatRegistry& stats, const std::string& prefix,
                   const mem::SetAssocCache& cache) {
  set_counter(stats, prefix + ".hits", cache.hits());
  set_counter(stats, prefix + ".misses", cache.misses());
  set_counter(stats, prefix + ".evictions", cache.evictions());
  set_counter(stats, prefix + ".writebacks", cache.writebacks());
}

void publish_tlb(util::StatRegistry& stats, const std::string& prefix,
                 const vm::Tlb& tlb) {
  set_counter(stats, prefix + ".hits", tlb.hits());
  set_counter(stats, prefix + ".misses", tlb.misses());
  set_counter(stats, prefix + ".evictions", tlb.evictions());
}

}  // namespace

void publish_counters(core::MacoSystem& system) {
  util::StatRegistry& stats = system.engine().stats();

  for (unsigned n = 0; n < system.node_count(); ++n) {
    core::ComputeNode& node = system.node(n);
    const std::string base = "node" + std::to_string(n);
    cpu::CpuCore& core = node.cpu();
    publish_cache(stats, base + ".cpu.l1d", core.l1d());
    publish_cache(stats, base + ".cpu.l2", core.l2());
    set_counter(stats, base + ".cpu.mtq.enqueues", core.mtq().allocations());
    set_counter(stats, base + ".cpu.mtq.backoffs",
                core.mtq().allocation_failures());
    publish_tlb(stats, base + ".vm.l1_tlb", core.mmu().l1_tlb());
    publish_tlb(stats, base + ".vm.stlb", core.mmu().shared_tlb());
    const vm::PageTableWalker& walker = core.mmu().walker();
    set_counter(stats, base + ".vm.walker.walks", walker.walks());
    set_counter(stats, base + ".vm.walker.faults", walker.faults());
    set_counter(stats, base + ".vm.walker.pte_reads", walker.pte_reads());
    set_counter(stats, base + ".vm.walker.walk_cache_hits",
                walker.walk_cache_hits());
    const vm::Matlb& matlb = node.mmae().matlb();
    set_counter(stats, base + ".mmae.matlb.hits", matlb.hits());
    set_counter(stats, base + ".mmae.matlb.misses", matlb.misses());
    set_counter(stats, base + ".mmae.matlb.retired", matlb.retired());
    set_counter(stats, base + ".mmae.matlb.late_predictions",
                matlb.late_predictions());
  }

  for (unsigned s = 0; s < system.ccm_slice_count(); ++s) {
    const mem::DirectoryCcm& ccm = system.ccm_slice(s);
    const std::string base = "ccm" + std::to_string(s);
    publish_cache(stats, base + ".l3", ccm.l3());
    set_counter(stats, base + ".recalls", ccm.recalls());
    set_counter(stats, base + ".stash_hits", ccm.stash_hits());
    set_counter(stats, base + ".stash_fills", ccm.stash_fills());
  }

  for (unsigned d = 0; d < system.dram_channel_count(); ++d) {
    const mem::DramModel& dram = system.dram_channel(d);
    const std::string base = "dram" + std::to_string(d);
    set_counter(stats, base + ".requests", dram.requests());
    set_counter(stats, base + ".bytes", dram.bytes_transferred());
    set_counter(stats, base + ".busy_ps", dram.busy_ps());
    if (const auto* queued =
            dynamic_cast<const mem::QueuedDramController*>(&dram)) {
      set_counter(stats, base + ".row_hits", queued->row_hits());
      set_counter(stats, base + ".row_misses", queued->row_misses());
      set_counter(stats, base + ".row_conflicts", queued->row_conflicts());
    }
  }

  set_counter(stats, "mesh.packets", system.mesh().packets_delivered());
  set_counter(stats, "mesh.flit_hops", system.mesh().flits_transferred());
  set_counter(stats, "engine.events", system.engine().events_executed());
  set_counter(stats, "engine.clock_edges",
              system.engine().clock_edges_executed());

  const noc::IcntModel& icnt = system.icnt();
  if (const auto* flit = dynamic_cast<const noc::FlitIcnt*>(&icnt)) {
    set_counter(stats, "noc.icnt.transfers", flit->transfers());
  }
  if (icnt.link_stats_enabled()) {
    const sim::TimePs window = system.engine().now();
    util::Histogram& occupancy =
        stats.histogram("noc.link_occupancy", 0.0, 1.0, 20);
    occupancy.reset();
    const auto& links = icnt.link_stats();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i].flits != 0) {
        const std::string base = "noc.link" + std::to_string(i);
        set_counter(stats, base + ".flits", links[i].flits);
        set_counter(stats, base + ".busy_ps",
                    static_cast<std::uint64_t>(links[i].busy_ps));
      }
      if (window > 0) {
        occupancy.record(static_cast<double>(links[i].busy_ps) /
                         static_cast<double>(window));
      }
    }
  }
}

void collect(core::MacoSystem& system, RunObservation& out) {
  publish_counters(system);
  for (const auto& [name, counter] : system.engine().stats().counters()) {
    out.counters[name] += counter.value();
  }
  const noc::IcntModel& icnt = system.icnt();
  if (icnt.link_stats_enabled()) {
    RunObservation traffic;
    traffic.noc.width = icnt.config().width;
    traffic.noc.height = icnt.config().height;
    traffic.noc.window_ps = system.engine().now();
    traffic.noc.links.reserve(icnt.link_stats().size());
    for (const noc::IcntModel::LinkTraffic& link : icnt.link_stats()) {
      traffic.noc.links.push_back(LinkTrafficRec{link.flits, link.busy_ps});
    }
    out.merge(traffic, 0);
  }
}

std::uint64_t sum_counters(
    const std::map<std::string, std::uint64_t>& counters,
    std::string_view prefix, std::string_view suffix) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : counters) {
    const std::string_view view = name;
    if (view.size() < prefix.size() + suffix.size()) continue;
    if (view.substr(0, prefix.size()) != prefix) continue;
    if (view.substr(view.size() - suffix.size()) != suffix) continue;
    total += value;
  }
  return total;
}

namespace {

// hits / (hits + misses); emitted only when the component saw traffic.
void add_hit_rate(exp::ScenarioResult& result, const RunObservation& obs,
                  const std::string& metric, std::string_view prefix,
                  std::string_view hit_suffix, std::string_view miss_suffix) {
  const std::uint64_t hits = sum_counters(obs.counters, prefix, hit_suffix);
  const std::uint64_t misses = sum_counters(obs.counters, prefix, miss_suffix);
  if (hits + misses == 0) return;
  result.add(metric, static_cast<double>(hits) /
                         static_cast<double>(hits + misses),
             "", true);
}

}  // namespace

void add_counter_metrics(exp::ScenarioResult& result,
                         const RunObservation& obs) {
  add_hit_rate(result, obs, "l1d_hit_rate", "node", ".cpu.l1d.hits",
               ".cpu.l1d.misses");
  add_hit_rate(result, obs, "l2_hit_rate", "node", ".cpu.l2.hits",
               ".cpu.l2.misses");
  add_hit_rate(result, obs, "l3_hit_rate", "ccm", ".l3.hits", ".l3.misses");
  add_hit_rate(result, obs, "l1_tlb_hit_rate", "node", ".vm.l1_tlb.hits",
               ".vm.l1_tlb.misses");
  add_hit_rate(result, obs, "stlb_hit_rate", "node", ".vm.stlb.hits",
               ".vm.stlb.misses");
  add_hit_rate(result, obs, "matlb_hit_rate", "node", ".mmae.matlb.hits",
               ".mmae.matlb.misses");

  const std::uint64_t walks =
      sum_counters(obs.counters, "node", ".vm.walker.walks");
  if (walks != 0) {
    result.add("tlb_walks", static_cast<double>(walks), "", false);
  }
  const std::uint64_t backoffs =
      sum_counters(obs.counters, "node", ".cpu.mtq.backoffs");
  const std::uint64_t enqueues =
      sum_counters(obs.counters, "node", ".cpu.mtq.enqueues");
  if (enqueues + backoffs != 0) {
    result.add("mtq_backoffs", static_cast<double>(backoffs), "", false);
  }

  const std::uint64_t row_hits =
      sum_counters(obs.counters, "dram", ".row_hits");
  const std::uint64_t row_misses =
      sum_counters(obs.counters, "dram", ".row_misses");
  const std::uint64_t row_conflicts =
      sum_counters(obs.counters, "dram", ".row_conflicts");
  if (row_hits + row_misses + row_conflicts != 0) {
    result.add("dram_row_hit_rate",
               static_cast<double>(row_hits) /
                   static_cast<double>(row_hits + row_misses + row_conflicts),
               "", true);
  }
  const std::uint64_t dram_bytes =
      sum_counters(obs.counters, "dram", ".bytes");
  if (dram_bytes != 0) {
    result.add("dram_bytes", static_cast<double>(dram_bytes), "B", false);
  }

  if (obs.noc.present() && obs.noc.window_ps > 0) {
    std::vector<double> utils;
    utils.reserve(obs.noc.links.size());
    for (const LinkTrafficRec& link : obs.noc.links) {
      utils.push_back(static_cast<double>(link.busy_ps) /
                      static_cast<double>(obs.noc.window_ps));
    }
    std::sort(utils.begin(), utils.end());
    result.add("noc_max_link_util", utils.back(), "", false);
    const std::size_t p95_index = std::min(
        utils.size() - 1, static_cast<std::size_t>(
                              0.95 * static_cast<double>(utils.size())));
    result.add("noc_p95_link_util", utils[p95_index], "", false);
  }
}

}  // namespace maco::obs
