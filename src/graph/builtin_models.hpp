// The shipped model manifests, compiled into libmaco.
//
// Every examples/models/*.json is embedded verbatim at build time
// (cmake/embed_manifests.cmake), so wl::resnet50() and friends lower the
// exact bytes a user sees in the tree — the builtin catalogue cannot
// drift from the shipped files. Names are the file stems:
// "resnet50-stage", "bert-block", "gpt3-block", "tiny", "moe-mlp".
#pragma once

#include <string_view>
#include <vector>

#include "graph/model_graph.hpp"

namespace maco::graph {

struct BuiltinManifest {
  const char* name;  // file stem under examples/models/
  const char* json;  // the file's bytes
};

const std::vector<BuiltinManifest>& builtin_manifests();

// The manifest text for `name`; throws GraphError listing the catalogue
// on an unknown name.
const char* builtin_manifest(std::string_view name);

// parse_model_graph(builtin_manifest(name)).
ModelGraph builtin_graph(std::string_view name);

}  // namespace maco::graph
