// Op lowering: a validated ModelGraph becomes a GemmPlus layer list.
//
// Each op kind has a lowering rule (the factory in lowering.cpp) mapping
// it onto the wl::Workload representation every fidelity rung consumes —
// the analytic SystemTimingModel, the detailed runner and the sampled
// tile-space strata. Symbolic dims resolve against the LoweringOptions:
// "batch" and "seq" directly, "tokens" to batch*seq_len in prefill and to
// batch in decode (one new token per sequence, the KV cache holding the
// rest). Rules (docs/GRAPHS.md has the full table):
//
//   gemm       one layer {m,n,k} from the A/B/C tensor dims
//   linear     {tokens, out_features, in_features}
//   conv2d     im2col: {out_ch, batch*oh*ow, in_ch*kernel^2}
//   attention  <op>.qkv {T,3H,H} + .scores {T,S*heads,H/heads}
//              + .context {T,H,S} + .proj {T,H,H}, T=tokens, S=seq span
//   moe        <op>.router {T,experts,H} + per-expert .expert.ffn1/.ffn2
//              with M=ceil(T*top_k/experts) and repeat=experts (the
//              multiplicity the sampled strata weight by)
//   elementwise/norm   fused as the PostOp of the producing GEMM layer
//
// The layer order is the topological schedule (graph/scheduler.hpp), and
// per-op contributions report how much of the lowered work each manifest
// op accounts for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/model_graph.hpp"
#include "workloads/gemm_workload.hpp"

namespace maco::graph {

enum class Phase : std::uint8_t {
  kPrefill,  // all tokens at once: M scales with batch*seq_len
  kDecode,   // one token per sequence against the KV cache: M = batch
};

const char* phase_name(Phase phase) noexcept;
// Throws GraphError on an unknown spelling.
Phase parse_phase(const std::string& name);

struct LoweringOptions {
  std::uint64_t batch = 0;    // 0 = manifest default
  std::uint64_t seq_len = 0;  // 0 = manifest default
  Phase phase = Phase::kPrefill;
  std::uint64_t moe_top_k = 0;  // 0 = op attr (itself defaulting to 2)
};

// How much of the lowered workload one manifest op accounts for.
struct OpContribution {
  std::string op;
  OpKind kind = OpKind::kLinear;
  std::size_t first_layer = 0;  // index into LoweredModel workload layers
  std::size_t layer_count = 0;  // 0 for fused elementwise/norm ops
  std::string fused_into;       // the absorbing layer's name, if fused
  std::uint64_t flops = 0;      // including repeats
  std::uint64_t bytes = 0;      // A+B+C traffic (fused ops: read+write)
  double flops_frac = 0.0;      // share of the workload total
};

struct LoweredModel {
  wl::Workload workload;  // layers in topological op order
  std::vector<OpContribution> ops;
  Phase phase = Phase::kPrefill;
  std::uint64_t batch = 1;    // resolved (options or manifest default)
  std::uint64_t seq_len = 1;  // resolved
  std::uint64_t tokens = 1;   // batch*seq_len (prefill) or batch (decode)
  std::uint64_t total_bytes = 0;

  std::uint64_t total_flops() const noexcept {
    return workload.total_flops();
  }
};

// Lowers a validated graph. Throws GraphError when an option combination
// is invalid (e.g. moe_top_k exceeding an op's expert count, or an
// elementwise op whose input no GEMM layer produces).
LoweredModel lower(const ModelGraph& graph,
                   const LoweringOptions& options = {});

}  // namespace maco::graph
