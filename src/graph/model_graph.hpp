// Model-graph frontend: JSON manifests describing a DNN as typed ops over
// named tensors.
//
// A manifest is the user-facing workload format (docs/GRAPHS.md): it
// declares tensors (shapes may use the symbolic dims "batch", "seq" and
// "tokens", resolved at lowering time) and ops (gemm / linear / conv2d /
// attention / moe / elementwise / norm) wired by tensor names. Parsing
// validates the whole document with typed diagnostics — unknown op kinds,
// bad dtypes, dangling edges, duplicate producers, per-kind shape
// mismatches and cycles all fail with a message naming the offending
// op/tensor — so a manifest that parses is guaranteed to lower
// (graph/lowering.hpp) onto the GEMM+ layer lists every fidelity rung
// consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sa/types.hpp"
#include "workloads/gemm_workload.hpp"

namespace maco::graph {

// Every manifest validation or lowering failure; the message names the
// op/tensor (and, through load_model_graph, the file) at fault.
class GraphError : public std::runtime_error {
 public:
  explicit GraphError(const std::string& what) : std::runtime_error(what) {}
};

enum class OpKind : std::uint8_t {
  kGemm,         // explicit C[m,n] = A[m,k] x B[k,n]
  kLinear,       // token-major fully-connected: [t,in] -> [t,out]
  kConv2d,       // im2col GEMM: M=out_ch, N=batch*oh*ow, K=in_ch*k^2
  kAttention,    // QKV + scores + context + projection GEMMs
  kMoe,          // router + top-k per-expert FFN GEMMs with multiplicity
  kElementwise,  // scalar kernel fused into the producing GEMM's post-op
  kNorm,         // normalization fused the same way
};

const char* op_kind_name(OpKind kind) noexcept;
// Throws GraphError listing the legal spellings.
OpKind parse_op_kind(const std::string& name);

// A tensor dim: a literal extent or one of the symbols resolved by the
// lowering options ("batch", "seq", and "tokens" = batch*seq_len in
// prefill / batch in decode).
enum class DimSymbol : std::uint8_t { kLiteral, kBatch, kSeq, kTokens };

struct Dim {
  DimSymbol symbol = DimSymbol::kLiteral;
  std::uint64_t value = 0;  // kLiteral only

  bool operator==(const Dim& other) const noexcept {
    return symbol == other.symbol &&
           (symbol != DimSymbol::kLiteral || value == other.value);
  }
  bool operator!=(const Dim& other) const noexcept {
    return !(*this == other);
  }
  std::string to_string() const;  // "512", "batch", "seq", "tokens"
};

struct TensorDecl {
  std::string name;
  std::vector<Dim> dims;
  sa::Precision dtype = sa::Precision::kFp32;
};

// Typed per-op attributes; which keys are legal depends on the kind (the
// parser rejects inapplicable or unknown keys naming the op).
struct OpAttrs {
  std::uint64_t out_features = 0;  // linear (required)
  std::uint64_t out_channels = 0;  // conv2d (required)
  std::uint64_t kernel = 1;        // conv2d
  std::uint64_t heads = 1;         // attention (required)
  std::uint64_t experts = 0;       // moe (required)
  std::uint64_t ffn = 0;           // moe expert FFN width (required)
  std::uint64_t top_k = 0;         // moe; 0 = scenario knob / default 2
  // gemm/linear/conv2d: trailing scalar work fused into the layer.
  wl::PostOp post = wl::PostOp::kNone;
  // elementwise/norm: the function fused into the producer GEMM
  // (elementwise defaults to relu, norm to layernorm).
  wl::PostOp fn = wl::PostOp::kNone;
};

struct OpDecl {
  std::string name;
  OpKind kind = OpKind::kLinear;
  std::vector<std::string> inputs;   // consumed tensor names
  std::vector<std::string> outputs;  // produced tensor names
  OpAttrs attrs;
  unsigned repeat = 1;  // identical instances, lowered as Layer::repeat
};

struct ModelGraph {
  std::string name;
  sa::Precision precision = sa::Precision::kFp32;
  std::uint64_t default_batch = 1;
  std::uint64_t default_seq_len = 1;
  std::vector<TensorDecl> tensors;
  std::vector<OpDecl> ops;  // manifest order (lowering reorders topologically)

  static constexpr std::size_t kNoProducer = static_cast<std::size_t>(-1);

  // nullptr when no tensor has that name.
  const TensorDecl* find_tensor(std::string_view name) const noexcept;
  // Index of the op producing `name`, or kNoProducer (a graph input).
  std::size_t producer_of(std::string_view name) const noexcept;
};

// "fp64"/"fp32"/"fp16" -> precision; throws GraphError on anything else.
sa::Precision parse_dtype(const std::string& name);
const char* dtype_name(sa::Precision precision) noexcept;

// Parses and fully validates one manifest document. Throws GraphError on
// malformed JSON or any schema/graph violation.
ModelGraph parse_model_graph(std::string_view json_text);

// read_text_file + parse_model_graph; every diagnostic names `path`.
ModelGraph load_model_graph(const std::string& path);

}  // namespace maco::graph
