#include "graph/lowering.hpp"

#include <map>

#include "graph/scheduler.hpp"
#include "sa/latency_model.hpp"

namespace maco::graph {

namespace {

[[noreturn]] void fail(const std::string& what) { throw GraphError(what); }

// Carries the resolved dims and the growing layer list through the
// per-kind lowering rules.
class Lowerer {
 public:
  Lowerer(const ModelGraph& graph, const LoweringOptions& options)
      : graph_(graph), options_(options) {
    model_.phase = options.phase;
    model_.batch =
        options.batch != 0 ? options.batch : graph.default_batch;
    model_.seq_len =
        options.seq_len != 0 ? options.seq_len : graph.default_seq_len;
    model_.tokens = options.phase == Phase::kPrefill
                        ? model_.batch * model_.seq_len
                        : model_.batch;
    model_.workload.name = graph.name;
    model_.workload.precision = graph.precision;
  }

  LoweredModel run() {
    for (const std::size_t index : topological_order(graph_)) {
      lower_op(graph_.ops[index]);
    }
    std::uint64_t total_flops = 0;
    for (const OpContribution& op : model_.ops) total_flops += op.flops;
    for (OpContribution& op : model_.ops) {
      op.flops_frac = total_flops > 0
                          ? static_cast<double>(op.flops) /
                                static_cast<double>(total_flops)
                          : 0.0;
      model_.total_bytes += op.bytes;
    }
    return std::move(model_);
  }

 private:
  std::uint64_t resolve(const Dim& dim) const {
    switch (dim.symbol) {
      case DimSymbol::kLiteral: return dim.value;
      case DimSymbol::kBatch: return model_.batch;
      case DimSymbol::kSeq: return model_.seq_len;
      case DimSymbol::kTokens: return model_.tokens;
    }
    return 0;
  }

  const TensorDecl& tensor(const std::string& name) const {
    const TensorDecl* t = graph_.find_tensor(name);
    if (t == nullptr) fail("undeclared tensor '" + name + "'");
    return *t;
  }

  std::uint64_t elements(const TensorDecl& t) const {
    std::uint64_t count = 1;
    for (const Dim& dim : t.dims) count *= resolve(dim);
    return count;
  }

  // Appends one GEMM layer and charges it to the current contribution.
  void emit(std::string name, const sa::TileShape& shape, wl::PostOp post,
            unsigned repeat) {
    const std::uint64_t ebytes =
        sa::element_bytes(model_.workload.precision);
    wl::Layer layer{std::move(name), shape, post, repeat};
    current_->flops += layer.flops();
    current_->bytes += (shape.m * shape.k + shape.k * shape.n +
                        shape.m * shape.n) *
                       ebytes * repeat;
    model_.workload.layers.push_back(std::move(layer));
  }

  // ---- the per-kind rules ----

  void lower_gemm(const OpDecl& op) {
    const TensorDecl& a = tensor(op.inputs[0]);
    const TensorDecl& b = tensor(op.inputs[1]);
    emit(op.name,
         sa::TileShape{resolve(a.dims[0]), resolve(b.dims[1]),
                       resolve(a.dims[1])},
         op.attrs.post, op.repeat);
  }

  void lower_linear(const OpDecl& op) {
    const TensorDecl& in = tensor(op.inputs[0]);
    emit(op.name,
         sa::TileShape{resolve(in.dims[0]), op.attrs.out_features,
                       in.dims[1].value},
         op.attrs.post, op.repeat);
  }

  void lower_conv2d(const OpDecl& op) {
    const TensorDecl& in = tensor(op.inputs[0]);
    const TensorDecl& out = tensor(op.outputs[0]);
    // im2col: strides are folded into the declared output size.
    emit(op.name,
         sa::TileShape{op.attrs.out_channels,
                       model_.batch * out.dims[1].value * out.dims[2].value,
                       in.dims[0].value * op.attrs.kernel * op.attrs.kernel},
         op.attrs.post, op.repeat);
  }

  void lower_attention(const OpDecl& op) {
    const TensorDecl& in = tensor(op.inputs[0]);
    const std::uint64_t hidden = in.dims[1].value;
    const std::uint64_t heads = op.attrs.heads;
    const std::uint64_t head_dim = hidden / heads;
    const std::uint64_t rows = model_.tokens;
    // The attended span: prefill scores every token against the whole
    // token block (the paper's aggregate-GEMM simplification); decode
    // scores the one new token per sequence against seq_len cached keys.
    const std::uint64_t span = options_.phase == Phase::kPrefill
                                   ? model_.tokens
                                   : model_.seq_len;
    emit(op.name + ".qkv", sa::TileShape{rows, 3 * hidden, hidden},
         wl::PostOp::kBiasAdd, op.repeat);
    emit(op.name + ".scores", sa::TileShape{rows, span * heads, head_dim},
         wl::PostOp::kSoftmax, op.repeat);
    emit(op.name + ".context",
         sa::TileShape{rows, head_dim * heads, span}, wl::PostOp::kNone,
         op.repeat);
    emit(op.name + ".proj", sa::TileShape{rows, hidden, hidden},
         wl::PostOp::kLayerNorm, op.repeat);
  }

  void lower_moe(const OpDecl& op) {
    const TensorDecl& in = tensor(op.inputs[0]);
    const std::uint64_t hidden = in.dims[1].value;
    const std::uint64_t experts = op.attrs.experts;
    std::uint64_t top_k = op.attrs.top_k;
    if (top_k == 0) top_k = options_.moe_top_k;
    if (top_k == 0) top_k = 2;
    if (top_k > experts) {
      fail("op '" + op.name + "': moe_top_k " + std::to_string(top_k) +
           " exceeds experts " + std::to_string(experts));
    }
    // Router scores every token against every expert.
    emit(op.name + ".router", sa::TileShape{model_.tokens, experts, hidden},
         wl::PostOp::kSoftmax, op.repeat);
    // Top-k routing activates top_k experts per token; with balanced
    // routing each expert sees ceil(tokens*top_k/experts) tokens. The
    // expert GEMMs repeat `experts` times — the multiplicity the sampled
    // tile strata collapse and weight by.
    const std::uint64_t expert_tokens =
        (model_.tokens * top_k + experts - 1) / experts;
    const auto expert_repeat =
        static_cast<unsigned>(experts) * op.repeat;
    emit(op.name + ".expert.ffn1",
         sa::TileShape{expert_tokens, op.attrs.ffn, hidden},
         wl::PostOp::kGelu, expert_repeat);
    emit(op.name + ".expert.ffn2",
         sa::TileShape{expert_tokens, hidden, op.attrs.ffn},
         wl::PostOp::kNone, expert_repeat);
  }

  // Elementwise/norm ops do not become layers: their scalar work rides as
  // the PostOp of the GEMM layer that produced their input (the CPU cores
  // execute post-ops in the GEMM+ model), charged once per repeat of that
  // layer.
  void lower_fused(const OpDecl& op) {
    const auto it = produced_by_.find(op.inputs[0]);
    if (it == produced_by_.end()) {
      fail("op '" + op.name + "': cannot fuse: input tensor '" +
           op.inputs[0] +
           "' is not produced by a lowered GEMM layer (graph inputs "
           "cannot absorb elementwise/norm work)");
    }
    wl::Layer& layer = model_.workload.layers[it->second];
    if (layer.post != wl::PostOp::kNone) {
      fail("op '" + op.name + "': cannot fuse into layer '" + layer.name +
           "': it already carries post-op '" + post_op_name(layer.post) +
           "'");
    }
    layer.post = op.attrs.fn;
    current_->fused_into = layer.name;
    current_->bytes = 2 * elements(tensor(op.inputs[0])) *
                      sa::element_bytes(model_.workload.precision) *
                      layer.repeat;
    // The op's output aliases the producer layer, so a downstream op
    // chains to the same GEMM.
    for (const std::string& output : op.outputs) {
      produced_by_[output] = it->second;
    }
  }

  void lower_op(const OpDecl& op) {
    OpContribution contribution;
    contribution.op = op.name;
    contribution.kind = op.kind;
    contribution.first_layer = model_.workload.layers.size();
    current_ = &contribution;

    // The factory: one lowering rule per op kind.
    using LowerFn = void (Lowerer::*)(const OpDecl&);
    static const std::map<OpKind, LowerFn> kFactory = {
        {OpKind::kGemm, &Lowerer::lower_gemm},
        {OpKind::kLinear, &Lowerer::lower_linear},
        {OpKind::kConv2d, &Lowerer::lower_conv2d},
        {OpKind::kAttention, &Lowerer::lower_attention},
        {OpKind::kMoe, &Lowerer::lower_moe},
        {OpKind::kElementwise, &Lowerer::lower_fused},
        {OpKind::kNorm, &Lowerer::lower_fused},
    };
    (this->*kFactory.at(op.kind))(op);

    contribution.layer_count =
        model_.workload.layers.size() - contribution.first_layer;
    if (contribution.layer_count > 0) {
      // Downstream consumers of this op's outputs depend on its last
      // emitted layer.
      for (const std::string& output : op.outputs) {
        produced_by_[output] = model_.workload.layers.size() - 1;
      }
    }
    current_ = nullptr;
    model_.ops.push_back(std::move(contribution));
  }

  const ModelGraph& graph_;
  const LoweringOptions& options_;
  LoweredModel model_;
  OpContribution* current_ = nullptr;
  // tensor name -> index of the workload layer that (last) wrote it.
  std::map<std::string, std::size_t> produced_by_;
};

}  // namespace

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kPrefill: return "prefill";
    case Phase::kDecode: return "decode";
  }
  return "?";
}

Phase parse_phase(const std::string& name) {
  if (name == "prefill") return Phase::kPrefill;
  if (name == "decode") return Phase::kDecode;
  fail("unknown phase '" + name + "' (want prefill|decode)");
}

LoweredModel lower(const ModelGraph& graph, const LoweringOptions& options) {
  return Lowerer(graph, options).run();
}

}  // namespace maco::graph
