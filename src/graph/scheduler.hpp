// Topological scheduling of manifest ops.
//
// Lowering emits layers in dependency order: an op runs only after every
// op producing one of its input tensors. Ties (independent ops) break by
// manifest position, so a manifest that is already a chain — every legacy
// model — lowers in exactly its written order, which is what makes the
// generated layer lists bit-identical to the removed hard-coded ones.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/model_graph.hpp"

namespace maco::graph {

// Stable topological order of op indices (Kahn's algorithm, smallest
// manifest index first among ready ops). Throws GraphError naming an op on
// a dependency cycle.
std::vector<std::size_t> topological_order(const ModelGraph& graph);

}  // namespace maco::graph
