#include "graph/builtin_models.hpp"

#include <string>

namespace maco::graph {

const std::vector<BuiltinManifest>& builtin_manifests() {
  static const std::vector<BuiltinManifest> manifests = {
#include "builtin_manifests.inc"
  };
  return manifests;
}

const char* builtin_manifest(std::string_view name) {
  for (const BuiltinManifest& manifest : builtin_manifests()) {
    if (name == manifest.name) return manifest.json;
  }
  std::string known;
  for (const BuiltinManifest& manifest : builtin_manifests()) {
    if (!known.empty()) known += "|";
    known += manifest.name;
  }
  throw GraphError("unknown builtin model '" + std::string(name) +
                   "' (want " + known + ")");
}

ModelGraph builtin_graph(std::string_view name) {
  return parse_model_graph(builtin_manifest(name));
}

}  // namespace maco::graph
