#include "graph/scheduler.hpp"

#include <set>
#include <string>

namespace maco::graph {

std::vector<std::size_t> topological_order(const ModelGraph& graph) {
  const std::size_t count = graph.ops.size();
  // consumers[p] = ops reading a tensor produced by op p.
  std::vector<std::vector<std::size_t>> consumers(count);
  std::vector<std::size_t> indegree(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    for (const std::string& input : graph.ops[i].inputs) {
      const std::size_t producer = graph.producer_of(input);
      if (producer == ModelGraph::kNoProducer) continue;
      consumers[producer].push_back(i);
      ++indegree[i];
    }
  }

  std::set<std::size_t> ready;
  for (std::size_t i = 0; i < count; ++i) {
    if (indegree[i] == 0) ready.insert(i);
  }

  std::vector<std::size_t> order;
  order.reserve(count);
  while (!ready.empty()) {
    const std::size_t next = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(next);
    for (const std::size_t consumer : consumers[next]) {
      if (--indegree[consumer] == 0) ready.insert(consumer);
    }
  }

  if (order.size() != count) {
    // Some op never became ready: it sits on a cycle (or downstream of
    // one). Name the first such op for the diagnostic.
    for (std::size_t i = 0; i < count; ++i) {
      if (indegree[i] != 0) {
        throw GraphError("dependency cycle through op '" +
                         graph.ops[i].name + "'");
      }
    }
  }
  return order;
}

}  // namespace maco::graph
