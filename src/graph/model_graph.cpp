#include "graph/model_graph.hpp"

#include <cmath>
#include <initializer_list>

#include "graph/scheduler.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace maco::graph {

namespace {

[[noreturn]] void fail(const std::string& what) { throw GraphError(what); }

// ---- small typed readers over util::JsonValue ----

const util::JsonValue& member(const util::JsonValue& object,
                              std::string_view key,
                              const std::string& context) {
  const util::JsonValue* value = object.find(key);
  if (value == nullptr) {
    fail(context + ": missing required key '" + std::string(key) + "'");
  }
  return *value;
}

std::string string_field(const util::JsonValue& value,
                         const std::string& context) {
  if (!value.is_string()) fail(context + ": expected a string");
  return value.as_string();
}

std::uint64_t u64_field(const util::JsonValue& value,
                        const std::string& context, std::uint64_t min = 0) {
  if (!value.is_number()) fail(context + ": expected an integer");
  const double number = value.as_number();
  const double rounded = std::floor(number);
  if (rounded != number || number < 0.0 || number > 1e15) {
    fail(context + ": expected a non-negative integer, got " +
         std::to_string(number));
  }
  const auto result = static_cast<std::uint64_t>(rounded);
  if (result < min) {
    fail(context + ": must be >= " + std::to_string(min));
  }
  return result;
}

void reject_unknown_keys(const util::JsonValue& object,
                         std::initializer_list<std::string_view> known,
                         const std::string& context) {
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    bool ok = false;
    for (const std::string_view k : known) ok = ok || key == k;
    if (!ok) fail(context + ": unknown key '" + key + "'");
  }
}

wl::PostOp parse_post_op(const std::string& name,
                         const std::string& context) {
  if (name == "none") return wl::PostOp::kNone;
  if (name == "bias_add") return wl::PostOp::kBiasAdd;
  if (name == "relu") return wl::PostOp::kRelu;
  if (name == "gelu") return wl::PostOp::kGelu;
  if (name == "softmax") return wl::PostOp::kSoftmax;
  if (name == "layernorm") return wl::PostOp::kLayerNorm;
  fail(context + ": unknown post-op '" + name +
       "' (want none|bias_add|relu|gelu|softmax|layernorm)");
}

Dim parse_dim(const util::JsonValue& value, const std::string& context) {
  Dim dim;
  if (value.is_number()) {
    dim.symbol = DimSymbol::kLiteral;
    dim.value = u64_field(value, context, 1);
    return dim;
  }
  if (value.is_string()) {
    const std::string& name = value.as_string();
    if (name == "batch") {
      dim.symbol = DimSymbol::kBatch;
    } else if (name == "seq") {
      dim.symbol = DimSymbol::kSeq;
    } else if (name == "tokens") {
      dim.symbol = DimSymbol::kTokens;
    } else {
      fail(context + ": unknown dim symbol '" + name +
           "' (want batch|seq|tokens or a positive integer)");
    }
    return dim;
  }
  fail(context + ": a dim is an integer or one of batch|seq|tokens");
}

// ---- op attribute extraction (typed, per-kind key allow-lists) ----

struct AttrSpec {
  std::vector<std::string_view> allowed;
  std::vector<std::string_view> required;
};

AttrSpec attr_spec(OpKind kind) {
  switch (kind) {
    case OpKind::kGemm: return {{"post"}, {}};
    case OpKind::kLinear: return {{"out_features", "post"}, {"out_features"}};
    case OpKind::kConv2d:
      return {{"out_channels", "kernel", "post"}, {"out_channels"}};
    case OpKind::kAttention: return {{"heads"}, {"heads"}};
    case OpKind::kMoe: return {{"experts", "ffn", "top_k"}, {"experts", "ffn"}};
    case OpKind::kElementwise:
    case OpKind::kNorm: return {{"fn"}, {}};
  }
  return {{}, {}};
}

OpAttrs parse_attrs(const util::JsonValue* attrs, OpKind kind,
                    const std::string& context) {
  OpAttrs result;
  // Fused scalar kernels default to their namesake function.
  result.fn = kind == OpKind::kNorm ? wl::PostOp::kLayerNorm
                                    : wl::PostOp::kRelu;
  const AttrSpec spec = attr_spec(kind);
  if (attrs != nullptr) {
    if (!attrs->is_object()) fail(context + ": attrs must be an object");
    for (const auto& [key, value] : attrs->as_object()) {
      bool allowed = false;
      for (const std::string_view k : spec.allowed) {
        allowed = allowed || key == k;
      }
      if (!allowed) {
        std::string legal;
        for (const std::string_view k : spec.allowed) {
          if (!legal.empty()) legal += "|";
          legal += std::string(k);
        }
        fail(context + ": attr '" + key + "' does not apply to kind '" +
             op_kind_name(kind) + "'" +
             (legal.empty() ? " (no attrs accepted)" : " (want " + legal +
                                                           ")"));
      }
      const std::string attr_context = context + ": attr '" + key + "'";
      if (key == "out_features") {
        result.out_features = u64_field(value, attr_context, 1);
      } else if (key == "out_channels") {
        result.out_channels = u64_field(value, attr_context, 1);
      } else if (key == "kernel") {
        result.kernel = u64_field(value, attr_context, 1);
      } else if (key == "heads") {
        result.heads = u64_field(value, attr_context, 1);
      } else if (key == "experts") {
        result.experts = u64_field(value, attr_context, 1);
      } else if (key == "ffn") {
        result.ffn = u64_field(value, attr_context, 1);
      } else if (key == "top_k") {
        result.top_k = u64_field(value, attr_context, 1);
      } else if (key == "post") {
        result.post =
            parse_post_op(string_field(value, attr_context), attr_context);
      } else if (key == "fn") {
        result.fn =
            parse_post_op(string_field(value, attr_context), attr_context);
      }
    }
  }
  for (const std::string_view k : spec.required) {
    if (attrs == nullptr || attrs->find(k) == nullptr) {
      fail(context + ": kind '" + std::string(op_kind_name(kind)) +
           "' requires attr '" + std::string(k) + "'");
    }
  }
  if (kind == OpKind::kMoe && result.top_k != 0 &&
      result.top_k > result.experts) {
    fail(context + ": top_k " + std::to_string(result.top_k) +
         " exceeds experts " + std::to_string(result.experts));
  }
  return result;
}

// ---- per-kind edge-count and shape validation ----

std::string dims_text(const std::vector<Dim>& dims) {
  std::string text = "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) text += ",";
    text += dims[i].to_string();
  }
  return text + "]";
}

void require_io_counts(const OpDecl& op, std::size_t inputs,
                       std::size_t outputs, const std::string& context) {
  if (op.inputs.size() != inputs || op.outputs.size() != outputs) {
    fail(context + ": kind '" + std::string(op_kind_name(op.kind)) +
         "' takes " + std::to_string(inputs) + " input(s) and " +
         std::to_string(outputs) + " output(s), got " +
         std::to_string(op.inputs.size()) + "/" +
         std::to_string(op.outputs.size()));
  }
}

void require_rank(const TensorDecl& tensor, std::size_t rank,
                  const std::string& context) {
  if (tensor.dims.size() != rank) {
    fail(context + ": tensor '" + tensor.name + "' must have rank " +
         std::to_string(rank) + ", got " + dims_text(tensor.dims));
  }
}

void require_literal(const TensorDecl& tensor, std::size_t index,
                     const std::string& context) {
  if (tensor.dims[index].symbol != DimSymbol::kLiteral) {
    fail(context + ": tensor '" + tensor.name + "' dim " +
         std::to_string(index) + " must be a literal, got '" +
         tensor.dims[index].to_string() + "'");
  }
}

[[noreturn]] void shape_mismatch(const std::string& context,
                                 const std::string& detail) {
  fail(context + ": shape mismatch: " + detail);
}

void check_op_shapes(const ModelGraph& graph, const OpDecl& op) {
  const std::string context = "op '" + op.name + "'";
  const auto tensor = [&](const std::string& name) -> const TensorDecl& {
    const TensorDecl* t = graph.find_tensor(name);
    if (t == nullptr) {
      // Unreachable: edges were resolved before shape checks.
      fail(context + ": undeclared tensor '" + name + "'");
    }
    return *t;
  };
  switch (op.kind) {
    case OpKind::kGemm: {
      require_io_counts(op, 2, 1, context);
      const TensorDecl& a = tensor(op.inputs[0]);
      const TensorDecl& b = tensor(op.inputs[1]);
      const TensorDecl& c = tensor(op.outputs[0]);
      require_rank(a, 2, context);
      require_rank(b, 2, context);
      require_rank(c, 2, context);
      if (a.dims[1] != b.dims[0]) {
        shape_mismatch(context, "A " + dims_text(a.dims) +
                                    " inner dim != B " + dims_text(b.dims));
      }
      if (c.dims[0] != a.dims[0] || c.dims[1] != b.dims[1]) {
        shape_mismatch(context, "C " + dims_text(c.dims) + " != A x B " +
                                    dims_text(a.dims) + " x " +
                                    dims_text(b.dims));
      }
      break;
    }
    case OpKind::kLinear: {
      require_io_counts(op, 1, 1, context);
      const TensorDecl& in = tensor(op.inputs[0]);
      const TensorDecl& out = tensor(op.outputs[0]);
      require_rank(in, 2, context);
      require_rank(out, 2, context);
      require_literal(in, 1, context);
      require_literal(out, 1, context);
      if (out.dims[0] != in.dims[0]) {
        shape_mismatch(context, "output " + dims_text(out.dims) +
                                    " token dim != input " +
                                    dims_text(in.dims));
      }
      if (out.dims[1].value != op.attrs.out_features) {
        shape_mismatch(context,
                       "output features " + out.dims[1].to_string() +
                           " != out_features " +
                           std::to_string(op.attrs.out_features));
      }
      break;
    }
    case OpKind::kConv2d: {
      require_io_counts(op, 1, 1, context);
      const TensorDecl& in = tensor(op.inputs[0]);
      const TensorDecl& out = tensor(op.outputs[0]);
      require_rank(in, 3, context);   // [channels, h, w]
      require_rank(out, 3, context);  // [channels, oh, ow]
      for (std::size_t i = 0; i < 3; ++i) {
        require_literal(in, i, context);
        require_literal(out, i, context);
      }
      if (out.dims[0].value != op.attrs.out_channels) {
        shape_mismatch(context,
                       "output channels " + out.dims[0].to_string() +
                           " != out_channels " +
                           std::to_string(op.attrs.out_channels));
      }
      break;
    }
    case OpKind::kAttention: {
      require_io_counts(op, 1, 1, context);
      const TensorDecl& in = tensor(op.inputs[0]);
      const TensorDecl& out = tensor(op.outputs[0]);
      require_rank(in, 2, context);  // [tokens, hidden]
      require_rank(out, 2, context);
      require_literal(in, 1, context);
      if (in.dims != out.dims) {
        shape_mismatch(context, "output " + dims_text(out.dims) +
                                    " != input " + dims_text(in.dims) +
                                    " (attention preserves shape)");
      }
      const std::uint64_t hidden = in.dims[1].value;
      if (op.attrs.heads == 0 || hidden % op.attrs.heads != 0) {
        fail(context + ": heads " + std::to_string(op.attrs.heads) +
             " must divide hidden " + std::to_string(hidden));
      }
      break;
    }
    case OpKind::kMoe: {
      require_io_counts(op, 1, 1, context);
      const TensorDecl& in = tensor(op.inputs[0]);
      const TensorDecl& out = tensor(op.outputs[0]);
      require_rank(in, 2, context);  // [tokens, hidden]
      require_rank(out, 2, context);
      require_literal(in, 1, context);
      if (in.dims != out.dims) {
        shape_mismatch(context, "output " + dims_text(out.dims) +
                                    " != input " + dims_text(in.dims) +
                                    " (moe preserves shape)");
      }
      break;
    }
    case OpKind::kElementwise:
    case OpKind::kNorm: {
      require_io_counts(op, 1, 1, context);
      const TensorDecl& in = tensor(op.inputs[0]);
      const TensorDecl& out = tensor(op.outputs[0]);
      if (in.dims != out.dims) {
        shape_mismatch(context, "output " + dims_text(out.dims) +
                                    " != input " + dims_text(in.dims) +
                                    " (elementwise/norm preserve shape)");
      }
      break;
    }
  }
}

}  // namespace

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kGemm: return "gemm";
    case OpKind::kLinear: return "linear";
    case OpKind::kConv2d: return "conv2d";
    case OpKind::kAttention: return "attention";
    case OpKind::kMoe: return "moe";
    case OpKind::kElementwise: return "elementwise";
    case OpKind::kNorm: return "norm";
  }
  return "?";
}

OpKind parse_op_kind(const std::string& name) {
  if (name == "gemm") return OpKind::kGemm;
  if (name == "linear") return OpKind::kLinear;
  if (name == "conv2d") return OpKind::kConv2d;
  if (name == "attention") return OpKind::kAttention;
  if (name == "moe") return OpKind::kMoe;
  if (name == "elementwise") return OpKind::kElementwise;
  if (name == "norm") return OpKind::kNorm;
  fail("unknown op kind '" + name +
       "' (want gemm|linear|conv2d|attention|moe|elementwise|norm)");
}

std::string Dim::to_string() const {
  switch (symbol) {
    case DimSymbol::kLiteral: return std::to_string(value);
    case DimSymbol::kBatch: return "batch";
    case DimSymbol::kSeq: return "seq";
    case DimSymbol::kTokens: return "tokens";
  }
  return "?";
}

const TensorDecl* ModelGraph::find_tensor(
    std::string_view name) const noexcept {
  for (const TensorDecl& tensor : tensors) {
    if (tensor.name == name) return &tensor;
  }
  return nullptr;
}

std::size_t ModelGraph::producer_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (const std::string& output : ops[i].outputs) {
      if (output == name) return i;
    }
  }
  return kNoProducer;
}

sa::Precision parse_dtype(const std::string& name) {
  if (name == "fp64") return sa::Precision::kFp64;
  if (name == "fp32") return sa::Precision::kFp32;
  if (name == "fp16") return sa::Precision::kFp16;
  fail("bad dtype '" + name + "' (want fp64|fp32|fp16)");
}

const char* dtype_name(sa::Precision precision) noexcept {
  switch (precision) {
    case sa::Precision::kFp64: return "fp64";
    case sa::Precision::kFp32: return "fp32";
    case sa::Precision::kFp16: return "fp16";
  }
  return "?";
}

ModelGraph parse_model_graph(std::string_view json_text) {
  util::JsonValue document;
  try {
    document = util::parse_json(json_text);
  } catch (const std::exception& error) {
    fail(std::string("manifest is not valid JSON: ") + error.what());
  }
  if (!document.is_object()) fail("manifest root must be a JSON object");
  reject_unknown_keys(document,
                      {"model", "precision", "defaults", "tensors", "ops"},
                      "manifest");

  ModelGraph graph;
  graph.name = string_field(member(document, "model", "manifest"),
                            "manifest 'model'");
  if (graph.name.empty()) fail("manifest 'model' must not be empty");
  if (const util::JsonValue* precision = document.find("precision")) {
    graph.precision =
        parse_dtype(string_field(*precision, "manifest 'precision'"));
  }
  if (const util::JsonValue* defaults = document.find("defaults")) {
    if (!defaults->is_object()) fail("manifest 'defaults' must be an object");
    reject_unknown_keys(*defaults, {"batch", "seq_len"},
                        "manifest 'defaults'");
    if (const util::JsonValue* batch = defaults->find("batch")) {
      graph.default_batch = u64_field(*batch, "defaults 'batch'", 1);
    }
    if (const util::JsonValue* seq = defaults->find("seq_len")) {
      graph.default_seq_len = u64_field(*seq, "defaults 'seq_len'", 1);
    }
  }

  // ---- tensors ----
  const util::JsonValue& tensors = member(document, "tensors", "manifest");
  if (!tensors.is_array() || tensors.as_array().empty()) {
    fail("manifest 'tensors' must be a non-empty array");
  }
  for (const util::JsonValue& entry : tensors.as_array()) {
    if (!entry.is_object()) fail("each tensor must be an object");
    TensorDecl tensor;
    tensor.name = string_field(member(entry, "name", "tensor"),
                               "tensor 'name'");
    const std::string context = "tensor '" + tensor.name + "'";
    reject_unknown_keys(entry, {"name", "dims", "dtype"}, context);
    if (graph.find_tensor(tensor.name) != nullptr) {
      fail("duplicate tensor name '" + tensor.name + "'");
    }
    const util::JsonValue& dims = member(entry, "dims", context);
    if (!dims.is_array() || dims.as_array().empty()) {
      fail(context + ": 'dims' must be a non-empty array");
    }
    for (const util::JsonValue& dim : dims.as_array()) {
      tensor.dims.push_back(parse_dim(dim, context));
    }
    tensor.dtype = graph.precision;
    if (const util::JsonValue* dtype = entry.find("dtype")) {
      tensor.dtype = parse_dtype(string_field(*dtype, context + " 'dtype'"));
      if (tensor.dtype != graph.precision) {
        fail(context + ": dtype " + dtype_name(tensor.dtype) +
             " differs from model precision " + dtype_name(graph.precision) +
             " (mixed precision is not supported)");
      }
    }
    graph.tensors.push_back(std::move(tensor));
  }

  // ---- ops ----
  const util::JsonValue& ops = member(document, "ops", "manifest");
  if (!ops.is_array() || ops.as_array().empty()) {
    fail("manifest 'ops' must be a non-empty array");
  }
  for (const util::JsonValue& entry : ops.as_array()) {
    if (!entry.is_object()) fail("each op must be an object");
    OpDecl op;
    op.name = string_field(member(entry, "name", "op"), "op 'name'");
    const std::string context = "op '" + op.name + "'";
    reject_unknown_keys(
        entry, {"name", "kind", "inputs", "outputs", "attrs", "repeat"},
        context);
    for (const OpDecl& existing : graph.ops) {
      if (existing.name == op.name) {
        fail("duplicate op name '" + op.name + "'");
      }
    }
    op.kind = parse_op_kind(
        string_field(member(entry, "kind", context), context + " 'kind'"));
    const auto names = [&](const util::JsonValue& value,
                           const char* key) {
      std::vector<std::string> result;
      if (!value.is_array()) {
        fail(context + ": '" + key + "' must be an array of tensor names");
      }
      for (const util::JsonValue& name : value.as_array()) {
        result.push_back(
            string_field(name, context + " '" + key + "' entry"));
      }
      return result;
    };
    op.inputs = names(member(entry, "inputs", context), "inputs");
    op.outputs = names(member(entry, "outputs", context), "outputs");
    if (const util::JsonValue* repeat = entry.find("repeat")) {
      op.repeat = static_cast<unsigned>(
          u64_field(*repeat, context + " 'repeat'", 1));
    }
    op.attrs = parse_attrs(entry.find("attrs"), op.kind, context);
    graph.ops.push_back(std::move(op));
  }

  // ---- edges: every referenced tensor declared, one producer each ----
  for (const OpDecl& op : graph.ops) {
    const std::string context = "op '" + op.name + "'";
    for (const std::string& input : op.inputs) {
      if (graph.find_tensor(input) == nullptr) {
        fail(context + ": dangling edge: input tensor '" + input +
             "' is not declared");
      }
    }
    for (const std::string& output : op.outputs) {
      if (graph.find_tensor(output) == nullptr) {
        fail(context + ": dangling edge: output tensor '" + output +
             "' is not declared");
      }
    }
  }
  for (const TensorDecl& tensor : graph.tensors) {
    std::size_t producers = 0;
    for (const OpDecl& op : graph.ops) {
      for (const std::string& output : op.outputs) {
        if (output == tensor.name) ++producers;
      }
    }
    if (producers > 1) {
      fail("tensor '" + tensor.name + "' has " + std::to_string(producers) +
           " producers (exactly one op may write a tensor)");
    }
  }

  // ---- per-kind shape rules, then acyclicity ----
  for (const OpDecl& op : graph.ops) check_op_shapes(graph, op);
  (void)topological_order(graph);  // throws GraphError naming a cycle

  return graph;
}

ModelGraph load_model_graph(const std::string& path) {
  const std::string text = util::read_text_file(path);
  try {
    return parse_model_graph(text);
  } catch (const GraphError& error) {
    fail(path + ": " + error.what());
  }
}

}  // namespace maco::graph
