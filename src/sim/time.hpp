// Simulated time.
//
// Global simulated time is an integer count of picoseconds. MACO has three
// clock domains (CPU 2.2 GHz, MMAE 2.5 GHz, NoC/L3 2.0 GHz); expressing
// everything in ps keeps cross-domain event ordering exact while letting each
// component reason in its own cycles.
#pragma once

#include <cstdint>

namespace maco::sim {

using TimePs = std::uint64_t;
using Cycles = std::uint64_t;

inline constexpr TimePs kPsPerNs = 1000;
inline constexpr TimePs kPsPerUs = 1000 * kPsPerNs;
inline constexpr TimePs kPsPerMs = 1000 * kPsPerUs;
inline constexpr TimePs kPsPerSecond = 1000 * kPsPerMs;

inline constexpr double to_seconds(TimePs t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kPsPerSecond);
}

}  // namespace maco::sim
