// Clock domains.
//
// A ClockDomain converts between its own cycle count and global picoseconds.
// Periods are rounded to integer picoseconds (2.2 GHz -> 455 ps, i.e. +0.1%
// frequency error); the paper's metrics are ratios, so this rounding is
// harmless and documented in DESIGN.md.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace maco::sim {

class ClockDomain {
 public:
  ClockDomain(std::string name, double frequency_hz);

  const std::string& name() const noexcept { return name_; }
  double frequency_hz() const noexcept { return frequency_hz_; }
  TimePs period_ps() const noexcept { return period_ps_; }

  TimePs cycles_to_ps(Cycles cycles) const noexcept {
    return cycles * period_ps_;
  }
  // Rounds up: an event taking a fraction of a cycle occupies the cycle.
  Cycles ps_to_cycles(TimePs ps) const noexcept {
    return (ps + period_ps_ - 1) / period_ps_;
  }
  // The first domain-clock edge at or after `t`.
  TimePs next_edge_at_or_after(TimePs t) const noexcept {
    return ((t + period_ps_ - 1) / period_ps_) * period_ps_;
  }

 private:
  std::string name_;
  double frequency_hz_;
  TimePs period_ps_;
};

// The three MACO clock domains with the paper's frequencies.
ClockDomain make_cpu_clock();    // 2.2 GHz
ClockDomain make_mmae_clock();   // 2.5 GHz
ClockDomain make_noc_clock();    // 2.0 GHz

}  // namespace maco::sim
