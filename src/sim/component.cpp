#include "sim/component.hpp"

namespace maco::sim {

Component::Component(SimEngine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

Component::Component(Component& parent, std::string local_name)
    : engine_(parent.engine()),
      name_(parent.name() + "." + std::move(local_name)) {}

}  // namespace maco::sim
