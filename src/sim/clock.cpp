#include "sim/clock.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace maco::sim {

ClockDomain::ClockDomain(std::string name, double frequency_hz)
    : name_(std::move(name)), frequency_hz_(frequency_hz) {
  MACO_ASSERT_MSG(frequency_hz > 0, "clock " << name_ << " frequency");
  const double period = 1e12 / frequency_hz;
  period_ps_ = static_cast<TimePs>(std::llround(period));
  MACO_ASSERT_MSG(period_ps_ >= 1,
                  "clock " << name_ << " above 1 THz is not representable");
}

ClockDomain make_cpu_clock() { return ClockDomain("cpu", 2.2e9); }
ClockDomain make_mmae_clock() { return ClockDomain("mmae", 2.5e9); }
ClockDomain make_noc_clock() { return ClockDomain("noc", 2.0e9); }

}  // namespace maco::sim
