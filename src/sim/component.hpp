// Component base: a named node in the hardware hierarchy with access to the
// shared engine and a dotted stats prefix ("node3.mmae.dma0").
#pragma once

#include <string>

#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace maco::sim {

class Component {
 public:
  Component(SimEngine& engine, std::string name);
  Component(Component& parent, std::string local_name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  SimEngine& engine() noexcept { return engine_; }
  const std::string& name() const noexcept { return name_; }
  TimePs now() const noexcept { return engine_.now(); }

  util::Counter& counter(const std::string& stat) {
    return engine_.stats().counter(name_ + "." + stat);
  }
  util::Scalar& scalar(const std::string& stat) {
    return engine_.stats().scalar(name_ + "." + stat);
  }

 private:
  SimEngine& engine_;
  std::string name_;
};

}  // namespace maco::sim
