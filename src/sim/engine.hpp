// Discrete-event simulation engine.
//
// Single-threaded by design: determinism comes from the (time, sequence)
// total order on events, so two events at the same picosecond fire in
// scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace maco::sim {

class SimEngine {
 public:
  using Action = std::function<void()>;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  TimePs now() const noexcept { return now_; }

  // Schedule `action` to fire at absolute time `at` (>= now).
  void schedule_at(TimePs at, Action action);
  // Schedule `action` to fire `delay` ps from now.
  void schedule_after(TimePs delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  // Runs until the event queue drains. Returns the time of the last event.
  TimePs run();
  // Runs events with time <= deadline; pending later events remain queued.
  TimePs run_until(TimePs deadline);
  // True if no events are pending.
  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }

  std::uint64_t events_executed() const noexcept { return events_executed_; }

  util::StatRegistry& stats() noexcept { return stats_; }
  const util::StatRegistry& stats() const noexcept { return stats_; }

 private:
  struct Event {
    TimePs time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  util::StatRegistry stats_;
};

}  // namespace maco::sim
