// Discrete-event simulation engine.
//
// Single-threaded by design: determinism comes from the (time, sequence)
// total order on events, so two events at the same picosecond fire in
// scheduling order.
//
// Besides one-shot events, components with their own clock period can
// register as ClockedSources: the engine advances the global clock to the
// minimum of the queue head and every source's next busy edge, jumping over
// idle cycles entirely (quiescence fast-forward) and letting multi-rate
// domains step on their own periods. At a timestamp tie, clock edges fire
// before queued events: an edge models state that was already in flight
// when the events at that instant were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clocked_source.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace maco::sim {

class SimEngine {
 public:
  using Action = std::function<void()>;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  TimePs now() const noexcept { return now_; }

  // Schedule `action` to fire at absolute time `at` (>= now).
  void schedule_at(TimePs at, Action action);
  // Schedule `action` to fire `delay` ps from now.
  void schedule_after(TimePs delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  // Register/remove a clock-domain source consulted by run()/run_until().
  // Sources must outlive the engine or unregister before destruction.
  void register_clock(ClockedSource* source);
  void unregister_clock(ClockedSource* source);

  // Runs until the event queue drains and every clocked source is
  // quiescent. Returns the time of the last event or edge.
  TimePs run();
  // Runs events/edges with time <= deadline; later work remains pending.
  TimePs run_until(TimePs deadline);
  // True if no events are pending (clocked sources may still be active).
  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }

  std::uint64_t events_executed() const noexcept { return events_executed_; }
  std::uint64_t clock_edges_executed() const noexcept {
    return clock_edges_executed_;
  }

  util::StatRegistry& stats() noexcept { return stats_; }
  const util::StatRegistry& stats() const noexcept { return stats_; }

 private:
  struct Event {
    TimePs time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // The earliest busy clocked source, or {kNoPendingEvent, nullptr}.
  std::pair<TimePs, ClockedSource*> next_clock_edge() const noexcept;

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t clock_edges_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<ClockedSource*> clocks_;
  util::StatRegistry stats_;
};

}  // namespace maco::sim
