#include "sim/engine.hpp"

#include "util/assert.hpp"

namespace maco::sim {

void SimEngine::schedule_at(TimePs at, Action action) {
  MACO_ASSERT_MSG(at >= now_, "scheduling into the past: at=" << at
                                                              << " now=" << now_);
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

TimePs SimEngine::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the event must be moved out before
    // pop so the action survives, hence the const_cast idiom.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.action();
  }
  return now_;
}

TimePs SimEngine::run_until(TimePs deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace maco::sim
