#include "sim/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::sim {

void SimEngine::schedule_at(TimePs at, Action action) {
  MACO_ASSERT_MSG(at >= now_, "scheduling into the past: at=" << at
                                                              << " now=" << now_);
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

void SimEngine::register_clock(ClockedSource* source) {
  MACO_ASSERT(source != nullptr);
  clocks_.push_back(source);
}

void SimEngine::unregister_clock(ClockedSource* source) {
  clocks_.erase(std::remove(clocks_.begin(), clocks_.end(), source),
                clocks_.end());
}

std::pair<TimePs, ClockedSource*> SimEngine::next_clock_edge()
    const noexcept {
  TimePs best = kNoPendingEvent;
  ClockedSource* who = nullptr;
  for (ClockedSource* source : clocks_) {
    const TimePs due = source->next_due();
    if (due < best) {
      best = due;
      who = source;
    }
  }
  return {best, who};
}

TimePs SimEngine::run() {
  for (;;) {
    const TimePs event_time =
        queue_.empty() ? kNoPendingEvent : queue_.top().time;
    const auto [edge_time, source] = next_clock_edge();
    if (event_time == kNoPendingEvent && edge_time == kNoPendingEvent) break;
    if (edge_time <= event_time) {
      // The jump: now_ moves straight to the edge, skipping idle cycles.
      now_ = edge_time;
      ++clock_edges_executed_;
      source->advance();
    } else {
      // priority_queue::top returns const&; the event must be moved out
      // before pop so the action survives, hence the const_cast idiom.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ++events_executed_;
      ev.action();
    }
  }
  return now_;
}

TimePs SimEngine::run_until(TimePs deadline) {
  for (;;) {
    const TimePs event_time =
        queue_.empty() ? kNoPendingEvent : queue_.top().time;
    const auto [edge_time, source] = next_clock_edge();
    const TimePs next = std::min(event_time, edge_time);
    if (next == kNoPendingEvent || next > deadline) break;
    if (edge_time <= event_time) {
      now_ = edge_time;
      ++clock_edges_executed_;
      source->advance();
    } else {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ++events_executed_;
      ev.action();
    }
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace maco::sim
