// Clock-domain hook for the event engine.
//
// A ClockedSource is a component with its own clock period (the flit mesh
// at cycle_ps, a future banked-DRAM scheduler, ...) that only sometimes has
// work on an edge. Instead of self-scheduling one heap event per cycle, it
// reports the absolute time of its next busy edge; the engine advances the
// global clock to min(event queue, all clocked sources) — quiescence
// fast-forward across idle stretches, and each domain steps on its own
// period without lock-step ticking of the others.
#pragma once

#include <limits>

#include "sim/time.hpp"

namespace maco::sim {

// Sentinel: the source is quiescent and imposes no bound on the time jump.
inline constexpr TimePs kNoPendingEvent = std::numeric_limits<TimePs>::max();

class ClockedSource {
 public:
  virtual ~ClockedSource() = default;

  // Absolute time of the next edge at which this source has work to do, or
  // kNoPendingEvent while quiescent. Must be > the engine's current time
  // (an edge is reported once, then advanced through).
  virtual TimePs next_due() const = 0;

  // Process the edge previously reported by next_due(); the engine has
  // already advanced now() to exactly that time. May schedule events and
  // must leave next_due() strictly greater than now() (or quiescent).
  virtual void advance() = 0;
};

}  // namespace maco::sim
