// mATLB: the paper's predictive address-translation unit (Section IV.A).
//
// Given the matrix geometry and the upcoming tile, the mATLB computes the
// virtual address of the *first element in every page* the tile's DMA stream
// will touch (the red circles of Fig. 4), issues page-table walks for them
// through the CPU core's MMU ahead of time, and buffers the returned
// translations. DMA engines then consume translations in stream order; an
// entry is retired once it no longer matches the current virtual address.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "vm/layout.hpp"
#include "vm/page_table.hpp"
#include "vm/tlb.hpp"
#include "vm/walker.hpp"

namespace maco::vm {

// Enumerates, in DMA stream order (row-major over the tile), the first
// address the stream touches in each page. Consecutive duplicates are
// collapsed; a page revisited by a later row appears again, matching the
// stream-ordered retirement policy of the hardware buffer.
std::vector<VirtAddr> predict_page_entries(const MatrixDesc& matrix,
                                           const TileDesc& tile);

// Page-size-parameterized variant (what-if studies: 64 KiB / 2 MiB pages).
// The hardware mATLB always works at kPageSize.
std::vector<VirtAddr> predict_page_entries(const MatrixDesc& matrix,
                                           const TileDesc& tile,
                                           std::uint64_t page_bytes);

// Count of distinct pages covered by a tile (for sizing/coverage analysis).
std::uint64_t distinct_pages(const MatrixDesc& matrix, const TileDesc& tile);

class Matlb {
 public:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t ppn = 0;
    sim::TimePs ready_at = 0;  // when the prefetched walk completes
  };

  struct PrefillReport {
    std::size_t predicted_pages = 0;   // entries enqueued
    std::size_t dropped_capacity = 0;  // predictions beyond buffer capacity
    sim::TimePs total_walk_latency = 0;
    std::size_t faults = 0;
  };

  Matlb(std::string name, std::size_t capacity);

  // Resolve predictions for `tile` of `matrix` through the walker, starting
  // walks at `start`. Walks are issued back-to-back (the mATLB owns an MMU
  // request port), so entry i becomes ready at start + sum(lat[0..i]).
  PrefillReport prefill(Asid asid, const PageTable& table,
                        PageTableWalker& walker, const MatrixDesc& matrix,
                        const TileDesc& tile, sim::TimePs start);

  // Stream-ordered lookup: retires leading entries that no longer match,
  // then returns the translation if the head matches `va`'s page.
  // `now` is used to detect not-yet-ready entries (late prediction).
  struct LookupResult {
    bool hit = false;
    PhysAddr phys = 0;
    sim::TimePs wait = 0;  // extra wait if prediction not yet complete
  };
  LookupResult lookup(VirtAddr va, sim::TimePs now);

  void flush() noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return buffer_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t retired() const noexcept { return retired_; }
  std::uint64_t late_predictions() const noexcept { return late_; }
  void reset_stats() noexcept { hits_ = misses_ = retired_ = late_ = 0; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<Entry> buffer_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t late_ = 0;
};

}  // namespace maco::vm
