// Address-space primitive types shared across the virtual-memory subsystem.
#pragma once

#include <cstdint>

namespace maco::vm {

using VirtAddr = std::uint64_t;
using PhysAddr = std::uint64_t;
using Asid = std::uint16_t;  // process identifier carried by MTQ entries

inline constexpr unsigned kPageBits = 12;  // 4 KiB pages (paper, Fig. 4)
inline constexpr std::uint64_t kPageSize = 1ull << kPageBits;

inline constexpr std::uint64_t vpn_of(VirtAddr va) noexcept {
  return va >> kPageBits;
}
inline constexpr std::uint64_t ppn_of(PhysAddr pa) noexcept {
  return pa >> kPageBits;
}
inline constexpr std::uint64_t page_offset(std::uint64_t addr) noexcept {
  return addr & (kPageSize - 1);
}

}  // namespace maco::vm
