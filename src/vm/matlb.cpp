#include "vm/matlb.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace maco::vm {

std::vector<VirtAddr> predict_page_entries(const MatrixDesc& matrix,
                                           const TileDesc& tile,
                                           std::uint64_t page_bytes) {
  MACO_ASSERT(page_bytes > 0);
  validate_tile(matrix, tile);
  std::vector<VirtAddr> entries;
  std::uint64_t last_vpn = ~0ull;
  for (std::uint64_t r = 0; r < tile.rows; ++r) {
    const VirtAddr row_start = matrix.element_addr(tile.row0 + r, tile.col0);
    const VirtAddr row_end = row_start + tile.cols * matrix.elem_bytes;
    // First touch in the row's first page, then each page boundary crossed.
    VirtAddr addr = row_start;
    while (addr < row_end) {
      if (addr / page_bytes != last_vpn) {
        entries.push_back(addr);
        last_vpn = addr / page_bytes;
      }
      // Advance to the first element of the next page touched by this row.
      const VirtAddr next_page = (addr / page_bytes + 1) * page_bytes;
      if (next_page >= row_end) break;
      // Elements are contiguous within the row, so the first element in the
      // next page starts at the first element boundary >= next_page.
      const std::uint64_t into_row = next_page - row_start;
      const std::uint64_t elem_index =
          (into_row + matrix.elem_bytes - 1) / matrix.elem_bytes;
      addr = row_start + elem_index * matrix.elem_bytes;
    }
  }
  return entries;
}

std::vector<VirtAddr> predict_page_entries(const MatrixDesc& matrix,
                                           const TileDesc& tile) {
  return predict_page_entries(matrix, tile, kPageSize);
}

std::uint64_t distinct_pages(const MatrixDesc& matrix, const TileDesc& tile) {
  std::unordered_set<std::uint64_t> pages;
  for (const VirtAddr va : predict_page_entries(matrix, tile)) {
    pages.insert(vpn_of(va));
  }
  return pages.size();
}

Matlb::Matlb(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {
  MACO_ASSERT_MSG(capacity_ > 0, "mATLB " << name_ << " needs capacity");
}

Matlb::PrefillReport Matlb::prefill(Asid asid, const PageTable& table,
                                    PageTableWalker& walker,
                                    const MatrixDesc& matrix,
                                    const TileDesc& tile, sim::TimePs start) {
  PrefillReport report;
  sim::TimePs ready = start;
  for (const VirtAddr va : predict_page_entries(matrix, tile)) {
    if (buffer_.size() >= capacity_) {
      ++report.dropped_capacity;
      continue;
    }
    const WalkOutcome outcome = walker.walk(asid, table, va);
    if (!outcome.valid) {
      ++report.faults;
      continue;
    }
    ready += outcome.latency;
    report.total_walk_latency += outcome.latency;
    buffer_.push_back(Entry{vpn_of(va), ppn_of(outcome.phys), ready});
    ++report.predicted_pages;
  }
  return report;
}

Matlb::LookupResult Matlb::lookup(VirtAddr va, sim::TimePs now) {
  const std::uint64_t vpn = vpn_of(va);
  // Retire entries the stream has moved past (paper: "removed from the
  // buffer once it fails to match the current virtual address").
  while (!buffer_.empty() && buffer_.front().vpn != vpn) {
    buffer_.pop_front();
    ++retired_;
  }
  if (buffer_.empty()) {
    ++misses_;
    return LookupResult{};
  }
  const Entry& head = buffer_.front();
  ++hits_;
  LookupResult result;
  result.hit = true;
  result.phys = (head.ppn << kPageBits) | page_offset(va);
  if (head.ready_at > now) {
    result.wait = head.ready_at - now;
    ++late_;
  }
  return result;
}

void Matlb::flush() noexcept {
  buffer_.clear();
}

}  // namespace maco::vm
