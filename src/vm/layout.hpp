// Matrix memory-layout descriptors.
//
// The mATLB prediction (paper Fig. 4) is driven entirely by geometry: the
// matrix base/shape/stride, the tile position/shape, and the page size
// determine which pages a tile's DMA stream touches and in what order.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "vm/types.hpp"

namespace maco::vm {

// Row-major matrix in virtual memory.
struct MatrixDesc {
  VirtAddr base = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t elem_bytes = 8;        // FP64 by default
  std::uint64_t row_stride_bytes = 0;  // 0 => dense (cols * elem_bytes)

  std::uint64_t stride() const noexcept {
    return row_stride_bytes ? row_stride_bytes : cols * elem_bytes;
  }
  VirtAddr element_addr(std::uint64_t r, std::uint64_t c) const noexcept {
    return base + r * stride() + c * elem_bytes;
  }
  std::uint64_t footprint_bytes() const noexcept {
    return rows ? (rows - 1) * stride() + cols * elem_bytes : 0;
  }
};

// A rectangular tile within a matrix.
struct TileDesc {
  std::uint64_t row0 = 0;
  std::uint64_t col0 = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
};

inline void validate_tile(const MatrixDesc& m, const TileDesc& t) {
  MACO_ASSERT_MSG(t.row0 + t.rows <= m.rows && t.col0 + t.cols <= m.cols,
                  "tile [" << t.row0 << "+" << t.rows << ", " << t.col0 << "+"
                           << t.cols << ") outside matrix " << m.rows << "x"
                           << m.cols);
}

}  // namespace maco::vm
