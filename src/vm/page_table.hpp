// Four-level radix page table (ARMv8-style 48-bit VA, 4 KiB granule) plus a
// frame allocator and per-process address spaces.
//
// Table nodes are assigned simulated physical addresses so the page-table
// walker can charge realistic memory latencies for each level it touches.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "vm/types.hpp"

namespace maco::vm {

class PageTable {
 public:
  static constexpr int kLevels = 4;          // L0 (root) .. L3 (leaf)
  static constexpr unsigned kIndexBits = 9;  // 512 entries per node
  static constexpr unsigned kEntryBytes = 8;

  // `table_region_base` is the physical address where table nodes are
  // placed; successive nodes occupy successive frames.
  explicit PageTable(PhysAddr table_region_base);

  // Establish va -> pa for one page (both page-aligned).
  void map(VirtAddr va, PhysAddr pa);
  bool is_mapped(VirtAddr va) const;
  std::optional<PhysAddr> translate(VirtAddr va) const;

  // Walk trace: the PTE physical address read at each level, for timing.
  struct WalkTrace {
    std::array<PhysAddr, kLevels> pte_addr{};
    PhysAddr phys = 0;   // translated address (page base + offset)
    int levels = 0;      // levels actually read before hit/fault
    bool valid = false;  // false => page fault
  };
  WalkTrace walk(VirtAddr va) const;

  PhysAddr root_base() const noexcept { return nodes_[0].base; }
  std::uint64_t mapped_page_count() const noexcept { return mapped_pages_; }
  std::uint64_t node_count() const noexcept { return nodes_.size(); }

  static unsigned level_index(VirtAddr va, int level) noexcept {
    const unsigned shift = kPageBits + kIndexBits * (kLevels - 1 - level);
    return static_cast<unsigned>((va >> shift) & ((1u << kIndexBits) - 1));
  }

 private:
  struct Node {
    explicit Node(PhysAddr node_base) : base(node_base) {
      next.fill(-1);
      ppn.fill(0);
      present.fill(false);
    }
    PhysAddr base;
    std::array<std::int32_t, 1u << kIndexBits> next;  // interior: child node id
    std::array<std::uint64_t, 1u << kIndexBits> ppn;  // leaf: frame number
    std::array<bool, 1u << kIndexBits> present;       // leaf validity
  };

  std::int32_t alloc_node();

  std::vector<Node> nodes_;
  PhysAddr next_node_base_;
  std::uint64_t mapped_pages_ = 0;
};

// Bump allocator for simulated physical frames.
class FrameAllocator {
 public:
  explicit FrameAllocator(PhysAddr base) : next_(base) {}
  PhysAddr alloc_frame() {
    const PhysAddr frame = next_;
    next_ += kPageSize;
    ++allocated_;
    return frame;
  }
  std::uint64_t allocated_frames() const noexcept { return allocated_; }

 private:
  PhysAddr next_;
  std::uint64_t allocated_ = 0;
};

// A process address space: an ASID, a page table, and a bump virtual
// allocator that eagerly backs allocations with physical frames.
class AddressSpace {
 public:
  AddressSpace(Asid asid, PhysAddr page_table_base, PhysAddr frame_base,
               VirtAddr virt_base = 0x10000000ull);

  Asid asid() const noexcept { return asid_; }
  PageTable& page_table() noexcept { return table_; }
  const PageTable& page_table() const noexcept { return table_; }

  // Allocates `bytes` of page-backed virtual memory; returns its base.
  VirtAddr alloc(std::uint64_t bytes);

  // Reserves `bytes` of virtual address space WITHOUT backing frames
  // (mmap-style lazy allocation); accesses fault until map_page is called.
  VirtAddr reserve(std::uint64_t bytes);

  // Demand-paging path: backs the page containing `va` with a fresh frame.
  // Returns false if it was already mapped.
  bool map_page(VirtAddr va);

  std::uint64_t bytes_allocated() const noexcept { return bytes_allocated_; }

 private:
  Asid asid_;
  PageTable table_;
  FrameAllocator frames_;
  VirtAddr virt_cursor_;
  std::uint64_t bytes_allocated_ = 0;
};

}  // namespace maco::vm
