#include "vm/page_table.hpp"

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::vm {

PageTable::PageTable(PhysAddr table_region_base)
    : next_node_base_(table_region_base) {
  nodes_.emplace_back(next_node_base_);
  next_node_base_ += kPageSize;
}

std::int32_t PageTable::alloc_node() {
  nodes_.emplace_back(next_node_base_);
  next_node_base_ += kPageSize;
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void PageTable::map(VirtAddr va, PhysAddr pa) {
  MACO_ASSERT_MSG(page_offset(va) == 0 && page_offset(pa) == 0,
                  "map requires page-aligned addresses");
  std::int32_t node = 0;
  for (int level = 0; level < kLevels - 1; ++level) {
    const unsigned idx = level_index(va, level);
    if (nodes_[node].next[idx] < 0) {
      const std::int32_t child = alloc_node();
      nodes_[node].next[idx] = child;  // alloc_node may reallocate nodes_
    }
    node = nodes_[node].next[idx];
  }
  const unsigned leaf = level_index(va, kLevels - 1);
  if (!nodes_[node].present[leaf]) ++mapped_pages_;
  nodes_[node].present[leaf] = true;
  nodes_[node].ppn[leaf] = ppn_of(pa);
}

bool PageTable::is_mapped(VirtAddr va) const {
  return translate(va).has_value();
}

std::optional<PhysAddr> PageTable::translate(VirtAddr va) const {
  std::int32_t node = 0;
  for (int level = 0; level < kLevels - 1; ++level) {
    const std::int32_t next = nodes_[node].next[level_index(va, level)];
    if (next < 0) return std::nullopt;
    node = next;
  }
  const unsigned leaf = level_index(va, kLevels - 1);
  if (!nodes_[node].present[leaf]) return std::nullopt;
  return (nodes_[node].ppn[leaf] << kPageBits) | page_offset(va);
}

PageTable::WalkTrace PageTable::walk(VirtAddr va) const {
  WalkTrace trace;
  std::int32_t node = 0;
  for (int level = 0; level < kLevels; ++level) {
    const unsigned idx = level_index(va, level);
    trace.pte_addr[level] = nodes_[node].base + idx * kEntryBytes;
    trace.levels = level + 1;
    if (level < kLevels - 1) {
      const std::int32_t next = nodes_[node].next[idx];
      if (next < 0) return trace;  // fault at this level
      node = next;
    } else {
      if (!nodes_[node].present[idx]) return trace;  // leaf fault
      trace.valid = true;
      trace.phys = (nodes_[node].ppn[idx] << kPageBits) | page_offset(va);
    }
  }
  return trace;
}

AddressSpace::AddressSpace(Asid asid, PhysAddr page_table_base,
                           PhysAddr frame_base, VirtAddr virt_base)
    : asid_(asid), table_(page_table_base), frames_(frame_base),
      virt_cursor_(util::align_up(virt_base, kPageSize)) {}

VirtAddr AddressSpace::alloc(std::uint64_t bytes) {
  MACO_ASSERT_MSG(bytes > 0, "zero-byte allocation");
  const VirtAddr base = virt_cursor_;
  const std::uint64_t span = util::align_up(bytes, kPageSize);
  for (std::uint64_t offset = 0; offset < span; offset += kPageSize) {
    table_.map(base + offset, frames_.alloc_frame());
  }
  virt_cursor_ += span;
  bytes_allocated_ += bytes;
  return base;
}

VirtAddr AddressSpace::reserve(std::uint64_t bytes) {
  MACO_ASSERT_MSG(bytes > 0, "zero-byte reservation");
  const VirtAddr base = virt_cursor_;
  virt_cursor_ += util::align_up(bytes, kPageSize);
  bytes_allocated_ += bytes;
  return base;
}

bool AddressSpace::map_page(VirtAddr va) {
  const VirtAddr page = util::align_down(va, kPageSize);
  if (table_.is_mapped(page)) return false;
  table_.map(page, frames_.alloc_frame());
  return true;
}

}  // namespace maco::vm
