#include "vm/walker.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::vm {

PageTableWalker::PageTableWalker(MemoryLatencyOracle& memory,
                                 std::size_t walk_cache_entries)
    : memory_(memory), cache_(walk_cache_entries) {}

std::uint64_t PageTableWalker::prefix_for(VirtAddr va, int level) noexcept {
  // Bits of the VA above the range translated *below* `level`; two walks
  // with equal prefixes at `level` traverse the same interior node chain.
  const unsigned shift =
      kPageBits + PageTable::kIndexBits * (PageTable::kLevels - 1 - level);
  return va >> shift;
}

int PageTableWalker::cached_depth(Asid asid, VirtAddr va) const noexcept {
  int best = -1;
  for (const auto& entry : cache_) {
    if (!entry.valid || entry.asid != asid) continue;
    if (entry.prefix == prefix_for(va, entry.level) && entry.level > best) {
      best = entry.level;
    }
  }
  return best;
}

void PageTableWalker::fill_cache(Asid asid, VirtAddr va, int level) noexcept {
  if (cache_.empty()) return;
  auto victim = std::min_element(
      cache_.begin(), cache_.end(),
      [](const WalkCacheEntry& a, const WalkCacheEntry& b) {
        if (a.valid != b.valid) return !a.valid;  // prefer invalid slots
        return a.tick < b.tick;
      });
  *victim = WalkCacheEntry{true, asid, level, prefix_for(va, level),
                           ++lru_tick_};
}

WalkOutcome PageTableWalker::walk(Asid asid, const PageTable& table,
                                  VirtAddr va) {
  ++walks_;
  const PageTable::WalkTrace trace = table.walk(va);

  // Interior levels covered by the walk cache cost no memory access.
  const int depth = cache_.empty() ? -1 : cached_depth(asid, va);
  if (depth >= 0) ++walk_cache_hits_;

  WalkOutcome outcome;
  for (int level = depth + 1; level < trace.levels; ++level) {
    outcome.latency +=
        memory_.read_latency(trace.pte_addr[level], PageTable::kEntryBytes);
    ++outcome.memory_accesses;
    ++pte_reads_;
  }
  outcome.valid = trace.valid;
  outcome.phys = trace.phys;
  if (!trace.valid) {
    ++faults_;
    return outcome;
  }
  // Cache the deepest interior node reached (L2 covers a 2 MiB region).
  fill_cache(asid, va, PageTable::kLevels - 2);
  return outcome;
}

void PageTableWalker::invalidate_walk_cache() noexcept {
  for (auto& entry : cache_) entry.valid = false;
}

}  // namespace maco::vm
