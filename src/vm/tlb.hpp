// Fully-associative LRU TLB, keyed by (ASID, VPN).
//
// Models the paper's L1 ITLB/DTLB (48 entries) and the shared L2 TLB
// (1024 entries) that the MMAE reaches through its custom sTLB interface.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "vm/types.hpp"

namespace maco::vm {

class Tlb {
 public:
  Tlb(std::string name, std::size_t capacity);

  // On hit returns the PPN and refreshes recency.
  std::optional<std::uint64_t> lookup(Asid asid, std::uint64_t vpn);
  // Probe without touching recency or statistics (diagnostics).
  bool contains(Asid asid, std::uint64_t vpn) const;

  void insert(Asid asid, std::uint64_t vpn, std::uint64_t ppn);
  void invalidate(Asid asid, std::uint64_t vpn);
  void invalidate_asid(Asid asid);
  void invalidate_all();

  const std::string& name() const noexcept { return name_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return lru_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }
  void reset_stats() noexcept { hits_ = misses_ = evictions_ = 0; }

 private:
  struct Key {
    Asid asid;
    std::uint64_t vpn;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // vpn entropy dominates; fold the ASID into the high bits.
      return std::hash<std::uint64_t>()(k.vpn ^
                                        (static_cast<std::uint64_t>(k.asid)
                                         << 48));
    }
  };
  struct Entry {
    Key key;
    std::uint64_t ppn;
  };
  using LruList = std::list<Entry>;

  std::string name_;
  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace maco::vm
