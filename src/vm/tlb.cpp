#include "vm/tlb.hpp"

#include "util/assert.hpp"

namespace maco::vm {

Tlb::Tlb(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {
  MACO_ASSERT_MSG(capacity_ > 0, "TLB " << name_ << " needs capacity");
}

std::optional<std::uint64_t> Tlb::lookup(Asid asid, std::uint64_t vpn) {
  const Key key{asid, vpn};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
  return it->second->ppn;
}

bool Tlb::contains(Asid asid, std::uint64_t vpn) const {
  return index_.contains(Key{asid, vpn});
}

void Tlb::insert(Asid asid, std::uint64_t vpn, std::uint64_t ppn) {
  const Key key{asid, vpn};
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->ppn = ppn;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() == capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, ppn});
  index_[key] = lru_.begin();
}

void Tlb::invalidate(Asid asid, std::uint64_t vpn) {
  const auto it = index_.find(Key{asid, vpn});
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void Tlb::invalidate_asid(Asid asid) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.asid == asid) {
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tlb::invalidate_all() {
  lru_.clear();
  index_.clear();
}

}  // namespace maco::vm
