// Hardware page-table walker with a small upper-level walk cache.
//
// Walk latency is charged through a MemoryLatencyOracle so the walker can be
// wired either to fixed latencies (fast system model) or to the simulated
// cache hierarchy (detailed model).
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "vm/page_table.hpp"
#include "vm/types.hpp"

namespace maco::vm {

// Where a physical read would be serviced and how long it takes.
class MemoryLatencyOracle {
 public:
  virtual ~MemoryLatencyOracle() = default;
  virtual sim::TimePs read_latency(PhysAddr addr, std::uint32_t bytes) = 0;
};

class FixedLatencyOracle final : public MemoryLatencyOracle {
 public:
  explicit FixedLatencyOracle(sim::TimePs latency) : latency_(latency) {}
  sim::TimePs read_latency(PhysAddr, std::uint32_t) override {
    return latency_;
  }

 private:
  sim::TimePs latency_;
};

struct WalkOutcome {
  bool valid = false;       // false => page fault
  PhysAddr phys = 0;
  sim::TimePs latency = 0;  // total walk latency
  int memory_accesses = 0;  // PTE reads actually performed
};

class PageTableWalker {
 public:
  // `walk_cache_entries` caches upper-level (L0..L2) table nodes keyed by VA
  // prefix, as real MMUs do; 0 disables the cache.
  PageTableWalker(MemoryLatencyOracle& memory,
                  std::size_t walk_cache_entries = 16);

  WalkOutcome walk(Asid asid, const PageTable& table, VirtAddr va);

  void invalidate_walk_cache() noexcept;

  std::uint64_t walks() const noexcept { return walks_; }
  std::uint64_t faults() const noexcept { return faults_; }
  std::uint64_t pte_reads() const noexcept { return pte_reads_; }
  std::uint64_t walk_cache_hits() const noexcept { return walk_cache_hits_; }
  void reset_stats() noexcept {
    walks_ = faults_ = pte_reads_ = walk_cache_hits_ = 0;
  }

 private:
  struct WalkCacheEntry {
    bool valid = false;
    Asid asid = 0;
    int level = 0;          // deepest interior level this entry covers (0..2)
    std::uint64_t prefix = 0;  // VA bits above the covered level
    std::uint64_t tick = 0;    // LRU
  };

  // Returns the deepest interior level already covered by the cache
  // (-1 if none), so the walk can start below it.
  int cached_depth(Asid asid, VirtAddr va) const noexcept;
  void fill_cache(Asid asid, VirtAddr va, int level) noexcept;
  static std::uint64_t prefix_for(VirtAddr va, int level) noexcept;

  MemoryLatencyOracle& memory_;
  std::vector<WalkCacheEntry> cache_;
  std::uint64_t lru_tick_ = 0;

  std::uint64_t walks_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t pte_reads_ = 0;
  std::uint64_t walk_cache_hits_ = 0;
};

}  // namespace maco::vm
