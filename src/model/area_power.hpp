// Analytic area/power model (paper Table IV, 12 nm).
//
// Component areas and energies are bottom-up: SRAM macros by capacity, FMAC
// datapaths by count, control by queue sizing. The per-unit constants are
// calibrated once against the paper's published totals and breakdown
// (MMAE 1.58 mm² = Buffers 36.7% / SA 24.7% / AC 23.4% / ADE 15.8%;
// CPU 6.25 mm²; 1.5 W / 2.0 W) — the model then *derives* the ratios the
// paper argues from (9× GFLOPS/mm², 2× GFLOPS/W, 25% relative area).
#pragma once

#include <cstdint>
#include <string>

namespace maco::model {

// 12 nm-calibrated unit constants.
struct TechnologyConstants {
  double sram_mm2_per_kib = 0.00302;       // buffer/cache macro density
  double cam_mm2_per_entry = 0.00033;      // fully-associative TLB entry
  double fmac_mm2 = 0.0244;                // multi-precision FP64 FMAC + regs
  double dma_engine_mm2 = 0.060;
  double queue_mm2_per_entry = 0.015;      // task-queue entry + sequencer slice
  double control_base_mm2 = 0.25;          // AC scheduler/decoder base
  double addr_gen_mm2 = 0.053;             // ADE address generators
  double cpu_logic_base_mm2 = 3.87;        // OoO front/back end (Table I core)

  double fmac_energy_pj = 30.0;            // per FP64 MAC incl. operand drive
  double sram_watts_per_kib_active = 1.11e-3;
  double leakage_watts_per_mm2 = 0.055;
  double cpu_ooo_overhead_watts = 0.45;    // rename/ROB/issue at full tilt
};

struct MmaeParams {
  double frequency_hz = 2.5e9;
  unsigned fmacs = 16;              // 4×4 array
  unsigned buffer_kib = 192;        // A/B/C buffers
  unsigned stq_entries = 8;
  unsigned matlb_entries = 256;
  unsigned dma_engines = 2;
};

struct CpuParams {
  double frequency_hz = 2.2e9;
  unsigned fmacs = 8;
  unsigned l1_kib = 96;   // 48 KiB I + 48 KiB D
  unsigned l2_kib = 512;
  unsigned tlb_entries = 1072;  // 48 + 1024
};

struct AreaBreakdown {
  double buffers_mm2 = 0;
  double sa_mm2 = 0;
  double ac_mm2 = 0;
  double ade_mm2 = 0;
  double total_mm2 = 0;

  double buffers_fraction() const noexcept { return buffers_mm2 / total_mm2; }
  double sa_fraction() const noexcept { return sa_mm2 / total_mm2; }
  double ac_fraction() const noexcept { return ac_mm2 / total_mm2; }
  double ade_fraction() const noexcept { return ade_mm2 / total_mm2; }
};

struct UnitSummary {
  std::string name;
  double frequency_ghz = 0;
  double area_mm2 = 0;
  double power_watts = 0;
  unsigned fmacs = 0;
  double peak_gflops_fp64 = 0;
  double peak_gflops_fp32 = 0;
  double peak_gflops_fp16 = 0;  // 0 when unsupported

  double area_efficiency() const noexcept {  // GFLOPS/mm² (FP64)
    return peak_gflops_fp64 / area_mm2;
  }
  double power_efficiency() const noexcept {  // GFLOPS/W (FP64)
    return peak_gflops_fp64 / power_watts;
  }
};

class AreaPowerModel {
 public:
  explicit AreaPowerModel(TechnologyConstants tech = {}) : tech_(tech) {}

  AreaBreakdown mmae_area(const MmaeParams& params) const;
  double mmae_power(const MmaeParams& params) const;
  double cpu_area(const CpuParams& params) const;
  double cpu_power(const CpuParams& params) const;

  UnitSummary mmae_summary(const MmaeParams& params = {}) const;
  UnitSummary cpu_summary(const CpuParams& params = {}) const;

  const TechnologyConstants& tech() const noexcept { return tech_; }

 private:
  TechnologyConstants tech_;
};

}  // namespace maco::model
