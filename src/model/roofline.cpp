// Roofline helpers are header-only; this TU anchors the module library.
#include "model/roofline.hpp"
