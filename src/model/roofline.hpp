// Roofline helpers used by the baselines and the analysis benches.
#pragma once

#include <algorithm>
#include <cstdint>

namespace maco::model {

// Attainable FLOP/s under a compute roof and a bandwidth roof at the given
// arithmetic intensity (FLOPs per byte of traffic).
inline double attainable_flops(double peak_flops, double bandwidth_bytes,
                               double arithmetic_intensity) noexcept {
  return std::min(peak_flops, bandwidth_bytes * arithmetic_intensity);
}

// Arithmetic intensity of a cache-blocked GEMM: 2·m·n·k FLOPs over the
// traffic a (bm × bn) block schedule generates beyond the blocking cache.
inline double gemm_arithmetic_intensity(std::uint64_t m, std::uint64_t n,
                                        std::uint64_t k, std::uint64_t bm,
                                        std::uint64_t bn,
                                        unsigned elem_bytes) noexcept {
  // Per C block (bm×bn): A panel bm×k + B panel k×bn + C in/out.
  const double blocks =
      (static_cast<double>(m) / bm) * (static_cast<double>(n) / bn);
  const double traffic =
      blocks * (static_cast<double>(bm) * k + static_cast<double>(k) * bn +
                2.0 * bm * bn) *
      elem_bytes;
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  return flops / traffic;
}

}  // namespace maco::model
