#include "model/area_power.hpp"

namespace maco::model {

AreaBreakdown AreaPowerModel::mmae_area(const MmaeParams& params) const {
  AreaBreakdown area;
  area.buffers_mm2 = tech_.sram_mm2_per_kib * params.buffer_kib;
  area.sa_mm2 = tech_.fmac_mm2 * params.fmacs;
  area.ac_mm2 =
      tech_.control_base_mm2 + tech_.queue_mm2_per_entry * params.stq_entries;
  area.ade_mm2 = tech_.dma_engine_mm2 * params.dma_engines +
                 tech_.cam_mm2_per_entry * params.matlb_entries +
                 tech_.addr_gen_mm2;
  area.total_mm2 =
      area.buffers_mm2 + area.sa_mm2 + area.ac_mm2 + area.ade_mm2;
  return area;
}

double AreaPowerModel::mmae_power(const MmaeParams& params) const {
  const AreaBreakdown area = mmae_area(params);
  const double fmac_watts =
      params.fmacs * params.frequency_hz * tech_.fmac_energy_pj * 1e-12;
  const double buffer_watts =
      tech_.sram_watts_per_kib_active * params.buffer_kib;
  const double leakage = tech_.leakage_watts_per_mm2 * area.total_mm2;
  return fmac_watts + buffer_watts + leakage;
}

double AreaPowerModel::cpu_area(const CpuParams& params) const {
  return tech_.cpu_logic_base_mm2 + tech_.fmac_mm2 * params.fmacs +
         tech_.sram_mm2_per_kib * (params.l1_kib + params.l2_kib) +
         tech_.cam_mm2_per_entry * params.tlb_entries;
}

double AreaPowerModel::cpu_power(const CpuParams& params) const {
  const double fmac_watts =
      params.fmacs * params.frequency_hz * tech_.fmac_energy_pj * 1e-12;
  const double sram_watts =
      tech_.sram_watts_per_kib_active * (params.l1_kib + params.l2_kib);
  const double leakage = tech_.leakage_watts_per_mm2 * cpu_area(params);
  return fmac_watts + sram_watts + leakage + tech_.cpu_ooo_overhead_watts;
}

UnitSummary AreaPowerModel::mmae_summary(const MmaeParams& params) const {
  UnitSummary s;
  s.name = "MMAE";
  s.frequency_ghz = params.frequency_hz / 1e9;
  s.area_mm2 = mmae_area(params).total_mm2;
  s.power_watts = mmae_power(params);
  s.fmacs = params.fmacs;
  // Peak = 2 * freq * FMACs, with 2-way FP32 / 4-way FP16 SIMD (Fig. 2).
  s.peak_gflops_fp64 = 2.0 * params.frequency_hz * params.fmacs / 1e9;
  s.peak_gflops_fp32 = 2.0 * s.peak_gflops_fp64;
  s.peak_gflops_fp16 = 4.0 * s.peak_gflops_fp64;
  return s;
}

UnitSummary AreaPowerModel::cpu_summary(const CpuParams& params) const {
  UnitSummary s;
  s.name = "CPU";
  s.frequency_ghz = params.frequency_hz / 1e9;
  s.area_mm2 = cpu_area(params);
  s.power_watts = cpu_power(params);
  s.fmacs = params.fmacs;
  s.peak_gflops_fp64 = 2.0 * params.frequency_hz * params.fmacs / 1e9;
  s.peak_gflops_fp32 = 2.0 * s.peak_gflops_fp64;
  s.peak_gflops_fp16 = 0.0;  // the core's VFU has no FP16 GEMM mode
  return s;
}

}  // namespace maco::model
