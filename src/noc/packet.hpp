// NoC packet and flit types.
//
// The paper's NoC: 4×4 2D mesh, X-Y dimension-ordered routing, virtual
// channels, 256-bit links at 2 GHz (64 GB/s per direction per link, i.e. the
// quoted 128 GB/s bidirectional per compute node).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.hpp"

namespace maco::noc {

using NodeId = int;

// Message class maps to a virtual channel; separating requests from
// responses keeps the cache-coherence protocol deadlock-free on top of the
// deadlock-free X-Y routing.
enum class MsgClass : unsigned { kRequest = 0, kResponse = 1 };

struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t payload_bytes = 0;
  MsgClass msg_class = MsgClass::kRequest;
  std::uint64_t id = 0;        // unique, assigned at injection
  std::uint64_t user_tag = 0;  // opaque cookie for the endpoint protocol
  sim::TimePs injected_at = 0;
};

// A flit references its packet without owning it. The mesh owns in-flight
// packets through a PacketPool; standalone router tests may point flits at
// stack-owned packets.
struct Flit {
  Packet* packet = nullptr;
  bool head = false;
  bool tail = false;
};

// Free-list recycler for in-flight packets: steady-state traffic reuses a
// small working set of slots instead of allocating per packet. Slots live in
// a deque so acquired pointers stay stable while the pool grows.
class PacketPool {
 public:
  Packet* acquire() {
    if (free_.empty()) return &slabs_.emplace_back();
    Packet* slot = free_.back();
    free_.pop_back();
    ++reused_;
    return slot;
  }
  // The packet must have left the network (no flit references it).
  void release(Packet* slot) { free_.push_back(slot); }

  std::size_t allocated() const noexcept { return slabs_.size(); }
  std::uint64_t reused() const noexcept { return reused_; }

 private:
  std::deque<Packet> slabs_;
  std::vector<Packet*> free_;
  std::uint64_t reused_ = 0;
};

}  // namespace maco::noc
