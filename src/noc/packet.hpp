// NoC packet and flit types.
//
// The paper's NoC: 4×4 2D mesh, X-Y dimension-ordered routing, virtual
// channels, 256-bit links at 2 GHz (64 GB/s per direction per link, i.e. the
// quoted 128 GB/s bidirectional per compute node).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.hpp"

namespace maco::noc {

using NodeId = int;

// Message class maps to a virtual channel; separating requests from
// responses keeps the cache-coherence protocol deadlock-free on top of the
// deadlock-free X-Y routing.
enum class MsgClass : unsigned { kRequest = 0, kResponse = 1 };

struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t payload_bytes = 0;
  MsgClass msg_class = MsgClass::kRequest;
  std::uint64_t id = 0;        // unique, assigned at injection
  std::uint64_t user_tag = 0;  // opaque cookie for the endpoint protocol
  sim::TimePs injected_at = 0;
};

struct Flit {
  std::shared_ptr<Packet> packet;
  bool head = false;
  bool tail = false;
};

}  // namespace maco::noc
