#include "noc/router.hpp"

#include "util/assert.hpp"

namespace maco::noc {

Router::Router(NodeId id, unsigned x, unsigned y, const RouterConfig& config)
    : id_(id), x_(x), y_(y), vc_count_(config.vc_count),
      vc_depth_(config.vc_depth),
      queues_(kPortCount * config.vc_count),
      owners_(kPortCount * config.vc_count) {
  MACO_ASSERT(config.vc_count > 0 && config.vc_depth > 0);
}

Port Router::route(unsigned dst_x, unsigned dst_y) const noexcept {
  // Dimension order: X first, then Y (deadlock-free on a mesh).
  if (dst_x > x_) return Port::kEast;
  if (dst_x < x_) return Port::kWest;
  if (dst_y > y_) return Port::kSouth;
  if (dst_y < y_) return Port::kNorth;
  return Port::kLocal;
}

bool Router::has_buffer_space(Port in, unsigned vc) const noexcept {
  return queue(in, vc).flits.size() < vc_depth_;
}

void Router::accept_flit(Port in, unsigned vc, Flit flit) {
  MACO_ASSERT_MSG(has_buffer_space(in, vc),
                  "router " << id_ << " port " << static_cast<unsigned>(in)
                            << " vc " << vc << " overflow");
  queue(in, vc).flits.push_back(std::move(flit));
}

bool Router::any_flits() const noexcept {
  for (const auto& q : queues_) {
    if (!q.flits.empty()) return true;
  }
  return false;
}

}  // namespace maco::noc
