// Flit-level 2D-mesh network simulation.
//
// The mesh self-schedules one event per NoC cycle while any flit is in
// flight or awaiting injection, and goes quiescent otherwise, so it composes
// cheaply with the rest of the event-driven system.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "sim/component.hpp"

namespace maco::noc {

struct MeshConfig {
  unsigned width = 4;
  unsigned height = 4;
  unsigned flit_bytes = 32;   // 256-bit links
  unsigned header_bytes = 8;  // routing/command header in the head flit
  RouterConfig router;
  sim::TimePs cycle_ps = 500;  // 2 GHz
};

class MeshNetwork : public sim::Component {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  MeshNetwork(sim::SimEngine& engine, const MeshConfig& config);

  const MeshConfig& config() const noexcept { return config_; }
  unsigned node_count() const noexcept {
    return config_.width * config_.height;
  }

  // Endpoint receives packets ejected at `node`.
  void register_endpoint(NodeId node, DeliverFn deliver);

  // Queue a packet for injection at its source node; returns the packet id.
  std::uint64_t inject(Packet packet);

  // Number of flits a packet of `payload_bytes` occupies.
  unsigned flits_for(std::uint32_t payload_bytes) const noexcept;

  // Statistics.
  std::uint64_t packets_delivered() const noexcept { return delivered_; }
  std::uint64_t flits_transferred() const noexcept { return flit_hops_; }
  double mean_packet_latency_ps() const noexcept {
    return delivered_ ? latency_sum_ps_ / static_cast<double>(delivered_)
                      : 0.0;
  }
  std::uint64_t max_packet_latency_ps() const noexcept {
    return max_latency_ps_;
  }
  const Router& router(NodeId node) const { return *routers_.at(node); }

  // Direct access for tests: run until all queued packets are delivered.
  void drain();

 private:
  void pump();            // ensure a tick is scheduled
  void tick();            // one NoC cycle
  bool any_activity() const noexcept;
  void try_injections();
  void move_flits();
  void deliver(Port out_vc_ignored, const Flit& flit);

  MeshConfig config_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<DeliverFn> endpoints_;
  std::vector<std::deque<Flit>> injection_queues_;  // per node, flit-expanded
  bool tick_scheduled_ = false;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t flit_hops_ = 0;
  double latency_sum_ps_ = 0.0;
  std::uint64_t max_latency_ps_ = 0;
};

}  // namespace maco::noc
