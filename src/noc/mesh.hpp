// Flit-level 2D-mesh network simulation.
//
// Two drive modes share the same per-cycle semantics (move, then inject):
//  - event_driven=true (default): the mesh is a sim::ClockedSource — it
//    reports its next busy NoC edge and the engine jumps straight to it, so
//    idle cycles cost nothing and no per-cycle heap events exist;
//  - event_driven=false: the legacy lock-step drive, self-scheduling one
//    engine event per NoC cycle while active. Kept as the reference for the
//    exec=lockstep equivalence tests.
// Activity is tracked by an O(1) in-flight flit counter, and packet storage
// is recycled through a PacketPool free-list instead of per-packet
// allocation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "sim/clocked_source.hpp"
#include "sim/component.hpp"

namespace maco::noc {

struct MeshConfig {
  unsigned width = 4;
  unsigned height = 4;
  unsigned flit_bytes = 32;   // 256-bit links
  unsigned header_bytes = 8;  // routing/command header in the head flit
  RouterConfig router;
  sim::TimePs cycle_ps = 500;  // 2 GHz
  // Clock-domain drive vs legacy one-event-per-cycle drive (see above).
  bool event_driven = true;
};

class MeshNetwork : public sim::Component, public sim::ClockedSource {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  MeshNetwork(sim::SimEngine& engine, const MeshConfig& config);
  ~MeshNetwork() override;

  const MeshConfig& config() const noexcept { return config_; }
  unsigned node_count() const noexcept {
    return config_.width * config_.height;
  }

  // Endpoint receives packets ejected at `node`.
  void register_endpoint(NodeId node, DeliverFn deliver);

  // Queue a packet for injection at its source node; returns the packet id.
  std::uint64_t inject(Packet packet);

  // Number of flits a packet of `payload_bytes` occupies.
  unsigned flits_for(std::uint32_t payload_bytes) const noexcept;

  // ClockedSource: next busy NoC edge while any flit is queued or in
  // flight; quiescent otherwise.
  sim::TimePs next_due() const override;
  void advance() override;

  // Statistics.
  std::uint64_t packets_delivered() const noexcept { return delivered_; }
  std::uint64_t flits_transferred() const noexcept { return flit_hops_; }
  double mean_packet_latency_ps() const noexcept {
    return delivered_ ? latency_sum_ps_ / static_cast<double>(delivered_)
                      : 0.0;
  }
  std::uint64_t max_packet_latency_ps() const noexcept {
    return max_latency_ps_;
  }
  // Packet slots ever allocated / recycled by the pool.
  std::size_t packet_slots_allocated() const noexcept {
    return pool_.allocated();
  }
  std::uint64_t packet_slots_reused() const noexcept {
    return pool_.reused();
  }
  const Router& router(NodeId node) const { return *routers_.at(node); }

  // Direct access for tests: run until all queued packets are delivered.
  void drain();

 private:
  void pump();            // legacy mode: ensure a tick event is scheduled
  void tick();            // one NoC cycle (move, then inject)
  bool any_activity() const noexcept { return flits_in_flight_ > 0; }
  void wake();            // arm the next edge / tick after an injection
  void try_injections();
  void move_flits();
  void deliver(const Flit& flit);

  struct Move {
    Router* router;
    Port in_port;
    unsigned in_vc;
    Port out_port;
    unsigned out_vc;
  };

  MeshConfig config_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<DeliverFn> endpoints_;
  std::vector<std::deque<Flit>> injection_queues_;  // per node, flit-expanded
  PacketPool pool_;
  std::vector<Move> moves_;        // scratch, reused across cycles
  std::uint64_t flits_in_flight_ = 0;  // injection queues + router buffers
  sim::TimePs next_edge_ = 0;      // valid while flits_in_flight_ > 0
  bool tick_scheduled_ = false;    // legacy mode only
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t flit_hops_ = 0;
  double latency_sum_ps_ = 0.0;
  std::uint64_t max_latency_ps_ = 0;
};

}  // namespace maco::noc
