#include "noc/icnt.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::noc {
namespace {

// Directed-link directions, matching LinkLoadModel's link set.
enum : unsigned { kEject = 0, kNorthL = 1, kSouthL = 2, kEastL = 3, kWestL = 4 };

// Visits each directed link on the X-Y route src -> dst, including the
// final ejection port (X first, then Y, matching Router::route).
template <typename Fn>
void for_each_link(unsigned width, unsigned src, unsigned dst, Fn&& fn) {
  unsigned x = src % width;
  unsigned y = src / width;
  const unsigned dx = dst % width;
  const unsigned dy = dst / width;
  while (x != dx) {
    const unsigned node = y * width + x;
    if (dx > x) {
      fn(node * 5 + kEastL);
      ++x;
    } else {
      fn(node * 5 + kWestL);
      --x;
    }
  }
  while (y != dy) {
    const unsigned node = y * width + x;
    if (dy > y) {
      fn(node * 5 + kSouthL);
      ++y;
    } else {
      fn(node * 5 + kNorthL);
      --y;
    }
  }
  fn(dst * 5 + kEject);
}

}  // namespace

std::string_view icnt_kind_name(IcntKind kind) noexcept {
  switch (kind) {
    case IcntKind::kAnalytic: return "analytic";
    case IcntKind::kFlit: return "flit";
  }
  return "?";
}

IcntKind parse_icnt_kind(std::string_view name) {
  if (name == "analytic") return IcntKind::kAnalytic;
  if (name == "flit") return IcntKind::kFlit;
  throw std::invalid_argument("unknown icnt backend '" + std::string(name) +
                              "' (want analytic|flit)");
}

IcntModel::IcntModel(const IcntConfig& config) : config_(config) {
  MACO_ASSERT(config.width > 0 && config.height > 0);
}

IcntModel::~IcntModel() = default;

void IcntModel::enable_link_stats() {
  link_stats_.assign(
      static_cast<std::size_t>(config_.width) * config_.height * 5,
      LinkTraffic{});
}

void IcntModel::record_link_traffic(unsigned link, std::uint64_t flits,
                                    sim::TimePs busy_ps) const {
  LinkTraffic& stat = link_stats_[link];
  stat.flits += flits;
  stat.busy_ps += busy_ps;
}

unsigned IcntModel::hop_count(unsigned src, unsigned dst) const noexcept {
  const unsigned sx = src % config_.width;
  const unsigned sy = src / config_.width;
  const unsigned dx = dst % config_.width;
  const unsigned dy = dst / config_.width;
  return (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
}

// ---------------- AnalyticIcnt ----------------

sim::TimePs AnalyticIcnt::unloaded_round_trip_ps(
    int node, unsigned home, std::uint32_t /*bytes*/) const {
  const unsigned hops = hop_count(static_cast<unsigned>(node), home);
  return static_cast<sim::TimePs>(2 * (hops + 1)) * config_.hop_ps;
}

sim::TimePs AnalyticIcnt::request_leg_ps(sim::TimePs /*now*/, int /*node*/,
                                         unsigned /*home*/) {
  // Zero so the home slice is consulted at injection time — exactly what
  // the pre-trait closed form did; the response leg carries the whole
  // round trip.
  return 0;
}

sim::TimePs AnalyticIcnt::response_leg_ps(sim::TimePs /*now*/, unsigned home,
                                          int node, std::uint32_t bytes) {
  if (link_stats_enabled()) {
    // The closed form has no per-link booking, so account the transfer's
    // route here: a header-flit request out, the payload wormhole back,
    // each link charged one hop time.
    const auto src = static_cast<unsigned>(node);
    const auto payload_flits = static_cast<std::uint64_t>(util::ceil_div(
        bytes + config_.header_bytes, config_.flit_bytes));
    for_each_link(config_.width, src, home, [&](unsigned link) {
      record_link_traffic(link, 1, config_.hop_ps);
    });
    for_each_link(config_.width, home, src, [&](unsigned link) {
      record_link_traffic(link, payload_flits, config_.hop_ps);
    });
  }
  return unloaded_round_trip_ps(node, home, bytes);
}

// ---------------- FlitIcnt ----------------

FlitIcnt::FlitIcnt(const IcntConfig& config)
    : IcntModel(config),
      link_free_(static_cast<std::size_t>(config.width) * config.height * 5,
                 0) {
  MACO_ASSERT(config.flit_bytes > 0 && config.cycle_ps > 0);
}

unsigned FlitIcnt::flits_for(std::uint32_t payload_bytes) const noexcept {
  return static_cast<unsigned>(util::ceil_div(
      payload_bytes + config_.header_bytes, config_.flit_bytes));
}

sim::TimePs FlitIcnt::traverse(sim::TimePs start, unsigned src, unsigned dst,
                               unsigned flits,
                               std::vector<sim::TimePs>* link_free) const {
  // Wormhole pipeline: the head flit advances one link per cycle, the body
  // streams behind it; each link stays occupied for the packet's full flit
  // count, so a contending packet waits for the tail to pass.
  sim::TimePs head = start;
  for_each_link(config_.width, src, dst, [&](unsigned link) {
    sim::TimePs enter = head;
    if (link_free != nullptr) {
      enter = std::max(enter, (*link_free)[link]);
      (*link_free)[link] =
          enter + static_cast<sim::TimePs>(flits) * config_.cycle_ps;
      if (link_stats_enabled()) {
        record_link_traffic(
            link, flits, static_cast<sim::TimePs>(flits) * config_.cycle_ps);
      }
    }
    head = enter + config_.cycle_ps;
  });
  return head + static_cast<sim::TimePs>(flits - 1) * config_.cycle_ps;
}

sim::TimePs FlitIcnt::unloaded_round_trip_ps(int node, unsigned home,
                                             std::uint32_t bytes) const {
  const auto src = static_cast<unsigned>(node);
  const sim::TimePs arrive = traverse(0, src, home, 1, nullptr);
  return traverse(arrive, home, src, flits_for(bytes), nullptr);
}

sim::TimePs FlitIcnt::busy_horizon_ps() const noexcept {
  return *std::max_element(link_free_.begin(), link_free_.end());
}

sim::TimePs FlitIcnt::request_leg_ps(sim::TimePs now, int node,
                                     unsigned home) {
  ++transfers_;
  // Header-only request packet.
  return traverse(now, static_cast<unsigned>(node), home, 1, &link_free_) -
         now;
}

sim::TimePs FlitIcnt::response_leg_ps(sim::TimePs now, unsigned home,
                                      int node, std::uint32_t bytes) {
  // Payload wormhole back to the requester.
  return traverse(now, home, static_cast<unsigned>(node), flits_for(bytes),
                  &link_free_) -
         now;
}

std::unique_ptr<IcntModel> make_icnt_model(const IcntConfig& config) {
  switch (config.kind) {
    case IcntKind::kAnalytic:
      return std::make_unique<AnalyticIcnt>(config);
    case IcntKind::kFlit:
      return std::make_unique<FlitIcnt>(config);
  }
  throw std::invalid_argument("unknown icnt backend kind");
}

}  // namespace maco::noc
