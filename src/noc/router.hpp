// Input-queued wormhole router with per-VC buffers and round-robin output
// arbitration. One flit per output port per cycle; per-hop latency is one
// NoC cycle (router + link combined).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "noc/packet.hpp"

namespace maco::noc {

enum class Port : unsigned {
  kLocal = 0,
  kNorth = 1,  // -y
  kSouth = 2,  // +y
  kEast = 3,   // +x
  kWest = 4,   // -x
};
inline constexpr unsigned kPortCount = 5;

constexpr Port opposite(Port p) noexcept {
  switch (p) {
    case Port::kLocal: return Port::kLocal;
    case Port::kNorth: return Port::kSouth;
    case Port::kSouth: return Port::kNorth;
    case Port::kEast: return Port::kWest;
    case Port::kWest: return Port::kEast;
  }
  return Port::kLocal;
}

struct RouterConfig {
  unsigned vc_count = 2;
  unsigned vc_depth = 4;  // flits of buffering per VC
};

class Router {
 public:
  Router(NodeId id, unsigned x, unsigned y, const RouterConfig& config);

  NodeId id() const noexcept { return id_; }
  unsigned x() const noexcept { return x_; }
  unsigned y() const noexcept { return y_; }

  // X-Y dimension-ordered routing: resolve the output port toward `dst`.
  Port route(unsigned dst_x, unsigned dst_y) const noexcept;

  bool has_buffer_space(Port in, unsigned vc) const noexcept;
  void accept_flit(Port in, unsigned vc, Flit flit);

  struct InputQueue {
    std::deque<Flit> flits;
  };
  InputQueue& queue(Port in, unsigned vc) noexcept {
    return queues_[static_cast<unsigned>(in) * vc_count_ + vc];
  }
  const InputQueue& queue(Port in, unsigned vc) const noexcept {
    return queues_[static_cast<unsigned>(in) * vc_count_ + vc];
  }

  unsigned vc_count() const noexcept { return vc_count_; }
  unsigned vc_depth() const noexcept { return vc_depth_; }
  bool any_flits() const noexcept;

  // Wormhole ownership of an (output port, vc) by an (input port, vc),
  // held from head grant to tail departure.
  struct Ownership {
    bool held = false;
    unsigned in_port = 0;
    unsigned in_vc = 0;
  };
  Ownership& ownership(Port out, unsigned vc) noexcept {
    return owners_[static_cast<unsigned>(out) * vc_count_ + vc];
  }

  // Round-robin pointer per output port for fair arbitration.
  unsigned& rr_pointer(Port out) noexcept {
    return rr_[static_cast<unsigned>(out)];
  }

  // Statistics.
  std::uint64_t flits_forwarded(Port out) const noexcept {
    return forwarded_[static_cast<unsigned>(out)];
  }
  void count_forward(Port out) noexcept {
    ++forwarded_[static_cast<unsigned>(out)];
  }

 private:
  NodeId id_;
  unsigned x_;
  unsigned y_;
  unsigned vc_count_;
  unsigned vc_depth_;
  std::vector<InputQueue> queues_;   // [port][vc]
  std::vector<Ownership> owners_;    // [port][vc]
  std::array<unsigned, kPortCount> rr_{};
  std::array<std::uint64_t, kPortCount> forwarded_{};
};

}  // namespace maco::noc
