// Analytic NoC contention model.
//
// For paper-scale runs, flit-level simulation of months of traffic is
// intractable; instead, steady-state flows (bytes/s between node pairs) are
// projected onto the links their X-Y route traverses. The most-loaded link
// determines the saturation slowdown — exactly the effect the paper cites
// for the ~10 % multi-node efficiency loss ("NOC being unable to meet the
// bandwidth requirements of all compute nodes working in parallel").
// Tests cross-validate this model against the flit-level mesh.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/packet.hpp"

namespace maco::noc {

struct LinkLoadConfig {
  unsigned width = 4;
  unsigned height = 4;
  double link_bytes_per_second = 64.0e9;  // 256-bit @ 2 GHz, per direction
};

class LinkLoadModel {
 public:
  explicit LinkLoadModel(const LinkLoadConfig& config);

  void add_flow(NodeId src, NodeId dst, double bytes_per_second);
  void clear();

  // Peak utilization across all links (can exceed 1.0 when oversubscribed).
  double max_utilization() const noexcept;
  // Utilization of the most-loaded link on the X-Y path src -> dst.
  double path_utilization(NodeId src, NodeId dst) const noexcept;
  // Achieved-throughput scaling for a flow on that path: 1.0 when the path
  // is unsaturated, otherwise 1/utilization (proportional sharing).
  double flow_rate_scale(NodeId src, NodeId dst) const noexcept {
    const double u = path_utilization(src, dst);
    return u <= 1.0 ? 1.0 : 1.0 / u;
  }

  // X-Y hop count (zero for src == dst; excludes in/ejection).
  unsigned hop_count(NodeId src, NodeId dst) const noexcept;

  double link_capacity() const noexcept { return config_.link_bytes_per_second; }

 private:
  // Directed link index: 5 per node (Local ejection + 4 mesh directions).
  enum : unsigned { kEject = 0, kNorthL = 1, kSouthL = 2, kEastL = 3, kWestL = 4 };
  unsigned link_index(NodeId node, unsigned dir) const noexcept {
    return static_cast<unsigned>(node) * 5 + dir;
  }
  // Visit each directed link on the X-Y path, including final ejection.
  template <typename Fn>
  void for_each_link(NodeId src, NodeId dst, Fn&& fn) const;

  LinkLoadConfig config_;
  std::vector<double> load_;  // bytes/s per directed link
};

}  // namespace maco::noc
