#include "noc/link_load_model.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::noc {

LinkLoadModel::LinkLoadModel(const LinkLoadConfig& config)
    : config_(config), load_(config.width * config.height * 5, 0.0) {
  MACO_ASSERT(config.width > 0 && config.height > 0);
  MACO_ASSERT(config.link_bytes_per_second > 0);
}

template <typename Fn>
void LinkLoadModel::for_each_link(NodeId src, NodeId dst, Fn&& fn) const {
  unsigned x = static_cast<unsigned>(src) % config_.width;
  unsigned y = static_cast<unsigned>(src) / config_.width;
  const unsigned dx = static_cast<unsigned>(dst) % config_.width;
  const unsigned dy = static_cast<unsigned>(dst) / config_.width;
  // X first, then Y (must match Router::route).
  while (x != dx) {
    const unsigned node = y * config_.width + x;
    if (dx > x) {
      fn(link_index(static_cast<NodeId>(node), kEastL));
      ++x;
    } else {
      fn(link_index(static_cast<NodeId>(node), kWestL));
      --x;
    }
  }
  while (y != dy) {
    const unsigned node = y * config_.width + x;
    if (dy > y) {
      fn(link_index(static_cast<NodeId>(node), kSouthL));
      ++y;
    } else {
      fn(link_index(static_cast<NodeId>(node), kNorthL));
      --y;
    }
  }
  fn(link_index(dst, kEject));
}

void LinkLoadModel::add_flow(NodeId src, NodeId dst,
                             double bytes_per_second) {
  for_each_link(src, dst,
                [&](unsigned link) { load_[link] += bytes_per_second; });
}

void LinkLoadModel::clear() {
  std::fill(load_.begin(), load_.end(), 0.0);
}

double LinkLoadModel::max_utilization() const noexcept {
  const double peak = *std::max_element(load_.begin(), load_.end());
  return peak / config_.link_bytes_per_second;
}

double LinkLoadModel::path_utilization(NodeId src, NodeId dst) const noexcept {
  double peak = 0.0;
  for_each_link(src, dst, [&](unsigned link) {
    peak = std::max(peak, load_[link]);
  });
  return peak / config_.link_bytes_per_second;
}

unsigned LinkLoadModel::hop_count(NodeId src, NodeId dst) const noexcept {
  const unsigned sx = static_cast<unsigned>(src) % config_.width;
  const unsigned sy = static_cast<unsigned>(src) / config_.width;
  const unsigned dx = static_cast<unsigned>(dst) % config_.width;
  const unsigned dy = static_cast<unsigned>(dst) / config_.width;
  const unsigned hx = sx > dx ? sx - dx : dx - sx;
  const unsigned hy = sy > dy ? sy - dy : dy - sy;
  return hx + hy;
}

}  // namespace maco::noc
