#include "noc/mesh.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::noc {

MeshNetwork::MeshNetwork(sim::SimEngine& engine, const MeshConfig& config)
    : sim::Component(engine, "noc"), config_(config),
      endpoints_(node_count()), injection_queues_(node_count()) {
  MACO_ASSERT(config.width > 0 && config.height > 0);
  routers_.reserve(node_count());
  for (unsigned y = 0; y < config.height; ++y) {
    for (unsigned x = 0; x < config.width; ++x) {
      const NodeId id = static_cast<NodeId>(y * config.width + x);
      routers_.push_back(std::make_unique<Router>(id, x, y, config.router));
    }
  }
  if (config_.event_driven) engine.register_clock(this);
}

MeshNetwork::~MeshNetwork() {
  if (config_.event_driven) engine().unregister_clock(this);
}

void MeshNetwork::register_endpoint(NodeId node, DeliverFn deliver) {
  MACO_ASSERT(node >= 0 && node < static_cast<NodeId>(node_count()));
  endpoints_[node] = std::move(deliver);
}

unsigned MeshNetwork::flits_for(std::uint32_t payload_bytes) const noexcept {
  const std::uint32_t total = payload_bytes + config_.header_bytes;
  return static_cast<unsigned>(
      util::ceil_div(total, config_.flit_bytes));
}

std::uint64_t MeshNetwork::inject(Packet packet) {
  MACO_ASSERT(packet.src >= 0 &&
              packet.src < static_cast<NodeId>(node_count()));
  MACO_ASSERT(packet.dst >= 0 &&
              packet.dst < static_cast<NodeId>(node_count()));
  packet.id = next_packet_id_++;
  packet.injected_at = now();
  const unsigned flits = flits_for(packet.payload_bytes);
  Packet* slot = pool_.acquire();
  *slot = packet;
  for (unsigned i = 0; i < flits; ++i) {
    injection_queues_[packet.src].push_back(
        Flit{slot, i == 0, i == flits - 1});
  }
  const bool was_idle = flits_in_flight_ == 0;
  flits_in_flight_ += flits;
  counter("packets_injected").inc();
  if (was_idle) wake();
  return packet.id;
}

void MeshNetwork::wake() {
  if (config_.event_driven) {
    // Arm the next NoC clock edge; the engine jumps straight to it.
    next_edge_ = util::align_up(now() + 1, config_.cycle_ps);
  } else {
    pump();
  }
}

sim::TimePs MeshNetwork::next_due() const {
  return any_activity() ? next_edge_ : sim::kNoPendingEvent;
}

void MeshNetwork::advance() {
  move_flits();
  try_injections();
  if (any_activity()) next_edge_ = now() + config_.cycle_ps;
}

void MeshNetwork::pump() {
  if (tick_scheduled_) return;
  tick_scheduled_ = true;
  // Align to the next NoC clock edge.
  const sim::TimePs edge =
      util::align_up(now() + 1, config_.cycle_ps);
  engine().schedule_at(edge, [this] { tick(); });
}

void MeshNetwork::tick() {
  tick_scheduled_ = false;
  move_flits();
  try_injections();
  if (any_activity()) pump();
}

void MeshNetwork::try_injections() {
  for (unsigned node = 0; node < node_count(); ++node) {
    auto& queue = injection_queues_[node];
    Router& router = *routers_[node];
    while (!queue.empty()) {
      const unsigned vc =
          static_cast<unsigned>(queue.front().packet->msg_class) %
          router.vc_count();
      if (!router.has_buffer_space(Port::kLocal, vc)) break;
      router.accept_flit(Port::kLocal, vc, queue.front());
      queue.pop_front();
    }
  }
}

void MeshNetwork::move_flits() {
  // Phase 1: gather at most one grant per (router, output port, vc) based on
  // pre-move state; phase 2: apply all moves. This mirrors simultaneous
  // register updates in hardware.
  moves_.clear();

  for (auto& router_ptr : routers_) {
    Router& router = *router_ptr;
    for (unsigned out = 0; out < kPortCount; ++out) {
      const Port out_port = static_cast<Port>(out);
      for (unsigned vc = 0; vc < router.vc_count(); ++vc) {
        // Determine the (in_port, in_vc) allowed to send this cycle.
        auto& owner = router.ownership(out_port, vc);
        int chosen_in = -1;
        if (owner.held) {
          // Wormhole: only the owning input may continue the packet.
          const auto& q = router.queue(static_cast<Port>(owner.in_port),
                                       owner.in_vc);
          if (!q.flits.empty() && owner.in_vc == vc) {
            const Flit& head = q.flits.front();
            const Port routed = head.head
                ? router.route(
                      static_cast<unsigned>(head.packet->dst) %
                          config_.width,
                      static_cast<unsigned>(head.packet->dst) /
                          config_.width)
                : out_port;
            if (routed == out_port) chosen_in = static_cast<int>(owner.in_port);
          }
        } else {
          // Round-robin over input ports; only head flits can claim.
          unsigned& rr = router.rr_pointer(out_port);
          for (unsigned probe = 0; probe < kPortCount; ++probe) {
            const unsigned in = (rr + probe) % kPortCount;
            const auto& q = router.queue(static_cast<Port>(in), vc);
            if (q.flits.empty() || !q.flits.front().head) continue;
            const Packet& pkt = *q.flits.front().packet;
            const Port routed = router.route(
                static_cast<unsigned>(pkt.dst) % config_.width,
                static_cast<unsigned>(pkt.dst) / config_.width);
            if (routed != out_port) continue;
            if (static_cast<unsigned>(pkt.msg_class) % router.vc_count() !=
                vc) {
              continue;
            }
            chosen_in = static_cast<int>(in);
            rr = (in + 1) % kPortCount;
            break;
          }
        }
        if (chosen_in < 0) continue;

        // Check downstream space (or ejection, which always accepts).
        if (out_port != Port::kLocal) {
          const unsigned nx = router.x() + (out_port == Port::kEast ? 1 : 0) -
                              (out_port == Port::kWest ? 1 : 0);
          const unsigned ny = router.y() + (out_port == Port::kSouth ? 1 : 0) -
                              (out_port == Port::kNorth ? 1 : 0);
          const Router& next = *routers_[ny * config_.width + nx];
          if (!next.has_buffer_space(opposite(out_port), vc)) continue;
        }
        moves_.push_back(Move{&router, static_cast<Port>(chosen_in), vc,
                              out_port, vc});
      }
    }
  }

  for (const Move& mv : moves_) {
    Router& router = *mv.router;
    auto& q = router.queue(mv.in_port, mv.in_vc);
    MACO_ASSERT(!q.flits.empty());
    const Flit flit = q.flits.front();
    q.flits.pop_front();
    router.count_forward(mv.out_port);
    ++flit_hops_;

    auto& owner = router.ownership(mv.out_port, mv.out_vc);
    if (flit.head) {
      owner.held = true;
      owner.in_port = static_cast<unsigned>(mv.in_port);
      owner.in_vc = mv.in_vc;
    }
    if (flit.tail) owner.held = false;

    if (mv.out_port == Port::kLocal) {
      MACO_ASSERT(flits_in_flight_ > 0);
      --flits_in_flight_;  // the flit leaves the network at ejection
      deliver(flit);
    } else {
      const unsigned nx = router.x() + (mv.out_port == Port::kEast ? 1 : 0) -
                          (mv.out_port == Port::kWest ? 1 : 0);
      const unsigned ny = router.y() + (mv.out_port == Port::kSouth ? 1 : 0) -
                          (mv.out_port == Port::kNorth ? 1 : 0);
      routers_[ny * config_.width + nx]->accept_flit(opposite(mv.out_port),
                                                     mv.out_vc, flit);
    }
  }
}

void MeshNetwork::deliver(const Flit& flit) {
  if (!flit.tail) return;  // deliver the packet once, on its tail flit
  Packet* pkt = flit.packet;
  ++delivered_;
  const std::uint64_t latency = now() - pkt->injected_at;
  latency_sum_ps_ += static_cast<double>(latency);
  max_latency_ps_ = std::max(max_latency_ps_, latency);
  counter("packets_delivered").inc();
  if (endpoints_[pkt->dst]) endpoints_[pkt->dst](*pkt);
  // All earlier flits of the packet ejected before the tail, so no flit
  // references the slot anymore; an endpoint injecting from inside the
  // callback acquired a different slot (release happens after the call).
  pool_.release(pkt);
}

void MeshNetwork::drain() {
  while (any_activity() || tick_scheduled_) {
    engine().run_until(now() + config_.cycle_ps);
  }
}

}  // namespace maco::noc
