// Interconnect backend models behind one interface.
//
// The `icnt` hardware knob selects how the detailed machine charges
// NoC time per cache-line transfer: `analytic` is the original closed-form
// X-Y hop formula (behavior-preserving default), `flit` a wormhole-style
// model that walks the X-Y route and books occupancy on every directed
// link it traverses, so concurrent transfers contend for links the way
// they do in the flit-level mesh (noc/mesh.hpp). The analytic-fidelity
// sweep path keeps using LinkLoadModel; this trait covers the detailed
// and sampled machines.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace maco::noc {

// Selectable interconnect timing backend (the `icnt` hardware knob).
enum class IcntKind : std::uint8_t {
  kAnalytic,  // unloaded X-Y hop formula
  kFlit,      // flit-serialized transfers with per-link occupancy booking
};

std::string_view icnt_kind_name(IcntKind kind) noexcept;
// Throws std::invalid_argument naming the valid choices.
IcntKind parse_icnt_kind(std::string_view name);

struct IcntConfig {
  IcntKind kind = IcntKind::kAnalytic;
  unsigned width = 4;
  unsigned height = 4;
  sim::TimePs hop_ps = 500;    // analytic: one NoC cycle per hop
  unsigned flit_bytes = 32;    // flit: link width (256-bit)
  unsigned header_bytes = 8;   // flit: head-flit routing/command header
  sim::TimePs cycle_ps = 500;  // flit: link clock (2 GHz)
};

class IcntModel {
 public:
  explicit IcntModel(const IcntConfig& config);
  virtual ~IcntModel();

  IcntModel(const IcntModel&) = delete;
  IcntModel& operator=(const IcntModel&) = delete;

  // One line transfer is two legs: the request travels node -> home, the
  // home slice services it, then `bytes` of payload travel home -> node.
  //
  // Arrival-time servicing rule: the caller charges the home-slice work
  // (L3 / DRAM) BETWEEN the legs, passing the request's ARRIVAL time
  // (now + request leg) to DramModel::access — never the issue time — so
  // a queueing backend cannot double-bill backlog the network wait
  // already covered. See DramModel::access for the mirror-image contract.
  //
  // Each leg returns the added latency (not an absolute time); loaded
  // models book link occupancy, so concurrent transfers contend.
  virtual sim::TimePs request_leg_ps(sim::TimePs now, int node,
                                     unsigned home) = 0;
  virtual sim::TimePs response_leg_ps(sim::TimePs now, unsigned home,
                                      int node, std::uint32_t bytes) = 0;

  // Contention-free round trip — for callers with no notion of current
  // time (e.g. the page-table walker's PTE reads).
  virtual sim::TimePs unloaded_round_trip_ps(int node, unsigned home,
                                             std::uint32_t bytes) const = 0;

  // X-Y hop count (zero for node == home; excludes in/ejection).
  unsigned hop_count(unsigned src, unsigned dst) const noexcept;

  const IcntConfig& config() const noexcept { return config_; }

  // ---- optional per-link traffic accounting (profile=counters) ----
  //
  // Off by default so the hot transfer path pays nothing; when enabled,
  // every loaded leg adds its flit count and occupancy time to each
  // directed link it crosses (link index = node*5 + direction, ejection
  // first — the LinkLoadModel link set). Accounting only: recorded
  // traffic never feeds back into the latencies the legs return.
  struct LinkTraffic {
    std::uint64_t flits = 0;
    sim::TimePs busy_ps = 0;
  };
  void enable_link_stats();
  bool link_stats_enabled() const noexcept { return !link_stats_.empty(); }
  const std::vector<LinkTraffic>& link_stats() const noexcept {
    return link_stats_;
  }

 protected:
  void record_link_traffic(unsigned link, std::uint64_t flits,
                           sim::TimePs busy_ps) const;

  IcntConfig config_;
  // mutable: legs that book occupancy are the recording sites, and the
  // shared traversal helper is const for the unloaded-estimate path.
  mutable std::vector<LinkTraffic> link_stats_;
};

// `icnt=analytic`: two X-Y traversals at one hop per cycle plus an
// injection/ejection cycle each way — exactly the closed form the detailed
// machine always used; payload size and load are invisible. The request
// leg reports zero and the response leg the full round trip, preserving
// the historic behavior of consulting the home slice at injection time.
class AnalyticIcnt final : public IcntModel {
 public:
  explicit AnalyticIcnt(const IcntConfig& config) : IcntModel(config) {}

  sim::TimePs request_leg_ps(sim::TimePs now, int node,
                             unsigned home) override;
  sim::TimePs response_leg_ps(sim::TimePs now, unsigned home, int node,
                              std::uint32_t bytes) override;
  sim::TimePs unloaded_round_trip_ps(int node, unsigned home,
                                     std::uint32_t bytes) const override;
};

// `icnt=flit`: the request rides a head flit to the home slice and the
// payload streams back as a wormhole of data flits; every directed link on
// the X-Y route (including final ejection, mirroring LinkLoadModel's link
// set) is booked for the packet's full flit count, so overlapping
// transfers queue behind each other link by link.
class FlitIcnt final : public IcntModel {
 public:
  explicit FlitIcnt(const IcntConfig& config);

  sim::TimePs request_leg_ps(sim::TimePs now, int node,
                             unsigned home) override;
  sim::TimePs response_leg_ps(sim::TimePs now, unsigned home, int node,
                              std::uint32_t bytes) override;
  sim::TimePs unloaded_round_trip_ps(int node, unsigned home,
                                     std::uint32_t bytes) const override;

  // Flits in a packet of `payload_bytes` (header included), as
  // MeshNetwork::flits_for counts them.
  unsigned flits_for(std::uint32_t payload_bytes) const noexcept;

  // Loaded round trips charged so far, and the furthest-out link booking
  // (the network's busy horizon) — contention observability for tests.
  std::uint64_t transfers() const noexcept { return transfers_; }
  sim::TimePs busy_horizon_ps() const noexcept;

 private:
  // One wormhole traversal src -> dst of `flits` flits starting at
  // `start`; books link occupancy when `link_free` is non-null. Returns
  // the tail flit's ejection time.
  sim::TimePs traverse(sim::TimePs start, unsigned src, unsigned dst,
                       unsigned flits,
                       std::vector<sim::TimePs>* link_free) const;

  // Directed link index: 5 per node (ejection + 4 mesh directions),
  // matching LinkLoadModel's link set.
  std::vector<sim::TimePs> link_free_;
  std::uint64_t transfers_ = 0;
};

// Builds the backend `config.kind` selects.
std::unique_ptr<IcntModel> make_icnt_model(const IcntConfig& config);

}  // namespace maco::noc
