// Accelerator Data Engine (ADE).
//
// Owns the MMAE's two DMA engines and the A/B/C tile buffers, and provides
// tile-granularity load/store between matrices in virtual memory and
// HostMatrix staging (the functional image of the on-chip buffers).
// DMA0 handles loads, DMA1 handles stores, so inbound and outbound streams
// overlap (paper Fig. 2: ADE with DMA0/DMA1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmae/dma.hpp"
#include "sa/host_matrix.hpp"
#include "sa/tile_buffer.hpp"

namespace maco::mmae {

class AcceleratorDataEngine {
 public:
  AcceleratorDataEngine(std::string name, int node, const DmaConfig& dma,
                        MemoryBackend& backend, mem::PhysicalMemory& memory);

  // Loads tile `t` of `m` (FP64 elements) into `out` (resized to t.rows ×
  // t.cols). Returns the DMA result (fault => out contents unspecified).
  DmaResult load_tile(const vm::MatrixDesc& m, const vm::TileDesc& t,
                      sa::HostMatrix& out, const TranslationContext& ctx,
                      sim::TimePs start);

  // Stores `in` into tile `t` of `m`.
  DmaResult store_tile(const vm::MatrixDesc& m, const vm::TileDesc& t,
                       const sa::HostMatrix& in, const TranslationContext& ctx,
                       sim::TimePs start);

  // Region ops used by MA_MOVE / MA_INIT / MA_STASH.
  DmaResult move_region(const Region2D& src, const Region2D& dst,
                        const TranslationContext& ctx, sim::TimePs start);
  DmaResult init_region(const Region2D& dst, std::uint64_t pattern,
                        const TranslationContext& ctx, sim::TimePs start);
  DmaResult stash_region(const Region2D& region, bool lock,
                         const TranslationContext& ctx, sim::TimePs start);

  sa::BufferSet& buffers() noexcept { return buffers_; }
  DmaEngine& load_dma() noexcept { return dma0_; }
  DmaEngine& store_dma() noexcept { return dma1_; }

  static Region2D tile_region(const vm::MatrixDesc& m, const vm::TileDesc& t);

 private:
  std::string name_;
  DmaEngine dma0_;  // loads
  DmaEngine dma1_;  // stores
  sa::BufferSet buffers_;
  std::vector<std::uint8_t> staging_;
};

}  // namespace maco::mmae
