// Accelerator Controller (AC).
//
// Receives MPAIS commands from the CPU core (implements cpu::AcceleratorPort),
// buffers them in the Slave Task Queue, and executes them in arrival order:
// tile-GEMM tasks through the systolic array with two-level tiling
// (first-level <Tr,Tc> panels, second-level <ttr,ttc> tiles that fit the
// on-chip buffers), data-migration tasks through the ADE's DMA engines.
// Completions and exceptions are reported to the owning CPU's MTQ entry.
//
// Execution is functional *and* timed: tile data really moves between the
// simulated physical memory and HostMatrix buffer images, the systolic array
// computes real values, and the task timeline composes DMA, translation and
// compute with double-buffered overlap (compute of tile i overlaps the loads
// of tile i+1; translation is hidden only when the mATLB predicted it).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/core.hpp"
#include "mmae/data_engine.hpp"
#include "mmae/stq.hpp"
#include "sa/systolic_array.hpp"
#include "sim/component.hpp"
#include "vm/matlb.hpp"

namespace maco::mmae {

struct MmaeConfig {
  double frequency_hz = 2.5e9;  // Table IV
  sa::SaConfig sa{};            // 4×4 array
  bool use_matlb = true;        // predictive address translation (Fig. 4)
  std::size_t matlb_entries = 256;
  DmaConfig dma{};
  unsigned stq_entries = 8;
  // Inner K-chunk of the second-level tiling; 64 matches the paper's
  // <ttr,ttc> = <64,64> buffers (a 64×64 FP64 tile fills one 32 KiB bank).
  unsigned inner_k = 64;
};

struct TaskReport {
  cpu::Maid maid = 0;
  isa::Mnemonic op = isa::Mnemonic::kMaCfg;
  sim::TimePs start = 0;
  sim::TimePs end = 0;
  std::uint64_t macs = 0;
  std::uint64_t dma_bytes = 0;
  sim::TimePs sa_busy_ps = 0;
  sim::TimePs translation_stall_ps = 0;
  std::uint64_t matlb_hits = 0;
  std::uint64_t blocking_walks = 0;
  cpu::ExceptionType exception = cpu::ExceptionType::kNone;

  double duration_seconds() const noexcept {
    return sim::to_seconds(end - start);
  }
  // Computational efficiency vs the MMAE peak at `peak_macs_per_second`.
  double efficiency(double peak_macs_per_second) const noexcept {
    const double seconds = duration_seconds();
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(macs) / seconds / peak_macs_per_second;
  }
};

class AcceleratorController : public sim::Component,
                              public cpu::AcceleratorPort {
 public:
  // Called when a task finishes (after MTQ update), e.g. to wake schedulers.
  using CompletionFn =
      std::function<void(cpu::Maid, cpu::ExceptionType, sim::TimePs)>;

  AcceleratorController(sim::SimEngine& engine, int node,
                        const MmaeConfig& config, MemoryBackend& backend,
                        mem::PhysicalMemory& memory, cpu::CpuCore& cpu);

  // cpu::AcceleratorPort:
  bool submit(cpu::Maid maid, isa::Mnemonic op, const isa::ParamBlock& params,
              vm::Asid asid) override;

  void set_completion_callback(CompletionFn fn) { on_complete_ = std::move(fn); }
  // Page table for an ASID (multi-process: the OS registers live tables).
  void set_page_table_lookup(
      std::function<const vm::PageTable*(vm::Asid)> lookup) {
    table_lookup_ = std::move(lookup);
  }

  const MmaeConfig& config() const noexcept { return config_; }
  SlaveTaskQueue& stq() noexcept { return stq_; }
  AcceleratorDataEngine& ade() noexcept { return ade_; }
  vm::Matlb& matlb() noexcept { return matlb_; }

  double peak_macs_per_second() const noexcept {
    return config_.frequency_hz * config_.sa.rows * config_.sa.cols *
           sa::simd_ways(config_.sa.precision);
  }
  sim::TimePs cycles_to_ps(sim::Cycles cycles) const noexcept {
    return static_cast<sim::TimePs>(
        static_cast<double>(cycles) * 1e12 / config_.frequency_hz);
  }

  const std::vector<TaskReport>& reports() const noexcept { return reports_; }
  sim::TimePs busy_until() const noexcept { return busy_until_; }

 private:
  void try_start_next();
  TaskReport execute_task(const StqEntry& entry, sim::TimePs start);
  TaskReport execute_gemm(const StqEntry& entry, const isa::GemmParams& p,
                          sim::TimePs start);
  TaskReport execute_move(const StqEntry& entry, const isa::MoveParams& p,
                          sim::TimePs start);
  TaskReport execute_init(const StqEntry& entry, const isa::InitParams& p,
                          sim::TimePs start);
  TaskReport execute_stash(const StqEntry& entry, const isa::StashParams& p,
                           sim::TimePs start);
  TranslationContext context_for(const StqEntry& entry);

  MmaeConfig config_;
  int node_;
  SlaveTaskQueue stq_;
  AcceleratorDataEngine ade_;
  sa::SystolicArray array_;
  vm::Matlb matlb_;
  cpu::CpuCore& cpu_;
  CompletionFn on_complete_;
  std::function<const vm::PageTable*(vm::Asid)> table_lookup_;
  bool task_running_ = false;
  sim::TimePs busy_until_ = 0;
  std::vector<TaskReport> reports_;
};

}  // namespace maco::mmae
