#include "mmae/stq.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::mmae {

SlaveTaskQueue::SlaveTaskQueue(unsigned entries) : entries_(entries) {
  MACO_ASSERT_MSG(entries > 0, "STQ needs at least one entry");
}

bool SlaveTaskQueue::push(cpu::Maid maid, isa::Mnemonic op,
                          const isa::ParamBlock& block, vm::Asid asid) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [](const StqEntry& e) { return e.state == StqState::kFree; });
  if (it == entries_.end()) return false;

  StqEntry& entry = *it;
  entry = StqEntry{};
  entry.state = StqState::kPending;
  entry.maid = maid;
  entry.asid = asid;
  entry.op = op;
  switch (op) {
    case isa::Mnemonic::kMaCfg:
      entry.params = isa::GemmParams::unpack(block);
      break;
    case isa::Mnemonic::kMaMove:
      entry.params = isa::MoveParams::unpack(block);
      break;
    case isa::Mnemonic::kMaInit:
      entry.params = isa::InitParams::unpack(block);
      break;
    case isa::Mnemonic::kMaStash:
      entry.params = isa::StashParams::unpack(block);
      break;
    default:
      MACO_UNREACHABLE("task-management ops are not queued in the STQ");
  }
  pending_order_.push_back(
      static_cast<unsigned>(std::distance(entries_.begin(), it)));
  return true;
}

std::optional<unsigned> SlaveTaskQueue::next_pending() const {
  if (pending_order_.empty()) return std::nullopt;
  return pending_order_.front();
}

StqEntry& SlaveTaskQueue::entry(unsigned index) {
  MACO_ASSERT(index < entries_.size());
  return entries_[index];
}

const StqEntry& SlaveTaskQueue::entry(unsigned index) const {
  MACO_ASSERT(index < entries_.size());
  return entries_[index];
}

unsigned SlaveTaskQueue::occupied() const noexcept {
  unsigned count = 0;
  for (const auto& e : entries_) count += e.state != StqState::kFree ? 1 : 0;
  return count;
}

void SlaveTaskQueue::mark_running(unsigned index) {
  MACO_ASSERT(index < entries_.size());
  MACO_ASSERT_MSG(entries_[index].state == StqState::kPending,
                  "entry " << index << " not pending");
  MACO_ASSERT(!pending_order_.empty() && pending_order_.front() == index);
  pending_order_.pop_front();
  entries_[index].state = StqState::kRunning;
}

void SlaveTaskQueue::complete(unsigned index, cpu::ExceptionType exception) {
  MACO_ASSERT(index < entries_.size());
  StqEntry& e = entries_[index];
  MACO_ASSERT_MSG(e.state == StqState::kRunning,
                  "completing entry " << index << " that is not running");
  e.exception = exception;
  e.state = exception == cpu::ExceptionType::kNone ? StqState::kDone
                                                   : StqState::kException;
}

void SlaveTaskQueue::release(unsigned index) {
  MACO_ASSERT(index < entries_.size());
  entries_[index] = StqEntry{};
}

}  // namespace maco::mmae
