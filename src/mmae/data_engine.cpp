#include "mmae/data_engine.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace maco::mmae {

AcceleratorDataEngine::AcceleratorDataEngine(std::string name, int node,
                                             const DmaConfig& dma,
                                             MemoryBackend& backend,
                                             mem::PhysicalMemory& memory)
    : name_(std::move(name)),
      dma0_(name_ + ".dma0", node, dma, backend, memory),
      dma1_(name_ + ".dma1", node, dma, backend, memory),
      buffers_(sa::BufferSet::maco_default()) {}

Region2D AcceleratorDataEngine::tile_region(const vm::MatrixDesc& m,
                                            const vm::TileDesc& t) {
  vm::validate_tile(m, t);
  return Region2D{m.element_addr(t.row0, t.col0), t.rows,
                  t.cols * m.elem_bytes, m.stride()};
}

DmaResult AcceleratorDataEngine::load_tile(const vm::MatrixDesc& m,
                                           const vm::TileDesc& t,
                                           sa::HostMatrix& out,
                                           const TranslationContext& ctx,
                                           sim::TimePs start) {
  MACO_ASSERT_MSG(m.elem_bytes == sizeof(double),
                  name_ << ": functional tiles are FP64-backed");
  const Region2D region = tile_region(m, t);
  staging_.resize(region.total_bytes());
  const DmaResult result =
      dma0_.read_region(region, staging_, ctx, start);
  if (result.fault) return result;
  out = sa::HostMatrix(t.rows, t.cols);
  for (std::uint64_t r = 0; r < t.rows; ++r) {
    std::memcpy(out.row_ptr(r), staging_.data() + r * region.row_bytes,
                region.row_bytes);
  }
  return result;
}

DmaResult AcceleratorDataEngine::store_tile(const vm::MatrixDesc& m,
                                            const vm::TileDesc& t,
                                            const sa::HostMatrix& in,
                                            const TranslationContext& ctx,
                                            sim::TimePs start) {
  MACO_ASSERT_MSG(m.elem_bytes == sizeof(double),
                  name_ << ": functional tiles are FP64-backed");
  MACO_ASSERT(in.rows() == t.rows && in.cols() == t.cols);
  const Region2D region = tile_region(m, t);
  staging_.resize(region.total_bytes());
  for (std::uint64_t r = 0; r < t.rows; ++r) {
    std::memcpy(staging_.data() + r * region.row_bytes, in.row_ptr(r),
                region.row_bytes);
  }
  return dma1_.write_region(region, staging_, ctx, start);
}

DmaResult AcceleratorDataEngine::move_region(const Region2D& src,
                                             const Region2D& dst,
                                             const TranslationContext& ctx,
                                             sim::TimePs start) {
  MACO_ASSERT_MSG(src.total_bytes() == dst.total_bytes(),
                  name_ << ": move size mismatch");
  staging_.resize(src.total_bytes());
  DmaResult read = dma0_.read_region(src, staging_, ctx, start);
  if (read.fault) return read;
  DmaResult write = dma1_.write_region(dst, staging_, ctx, read.end_time);
  // Merge the two legs for reporting.
  write.bytes += read.bytes;
  write.segments += read.segments;
  write.translations += read.translations;
  write.matlb_hits += read.matlb_hits;
  write.blocking_walks += read.blocking_walks;
  write.translation_stall_ps += read.translation_stall_ps;
  return write;
}

DmaResult AcceleratorDataEngine::init_region(const Region2D& dst,
                                             std::uint64_t pattern,
                                             const TranslationContext& ctx,
                                             sim::TimePs start) {
  return dma1_.init_region(dst, pattern, ctx, start);
}

DmaResult AcceleratorDataEngine::stash_region(const Region2D& region,
                                              bool lock,
                                              const TranslationContext& ctx,
                                              sim::TimePs start) {
  return dma0_.stash_region(region, lock, ctx, start);
}

}  // namespace maco::mmae
