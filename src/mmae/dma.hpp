// MMAE DMA engines.
//
// A DMA engine streams 2D regions between the memory system (L3 / DRAM,
// reached over the NoC) and the MMAE's tile buffers. Every page boundary in
// the stream needs a translation: with the mATLB attached, translations were
// predicted and walked ahead of time (latency hidden unless the prediction
// is late); without it, the engine blocks on the shared TLB / page-table
// walker — exactly the overhead Fig. 6 quantifies.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "cpu/mmu.hpp"
#include "mem/physical_memory.hpp"
#include "sim/time.hpp"
#include "vm/layout.hpp"
#include "vm/matlb.hpp"

namespace maco::mmae {

// Timing+functional port to the memory system, implemented by the system
// layer (NoC latency/contention + CCM/MOESI + DRAM) and by simple fixtures
// in unit tests. All calls return the completion time of a transfer that
// begins at `start`.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;
  virtual sim::TimePs read(int node, vm::PhysAddr pa, void* out,
                           std::uint32_t bytes, sim::TimePs start) = 0;
  virtual sim::TimePs write(int node, vm::PhysAddr pa, const void* data,
                            std::uint32_t bytes, sim::TimePs start) = 0;
  // Prefetch into L3 (optionally pinning the lines); no data movement to
  // the requester.
  virtual sim::TimePs stash(int node, vm::PhysAddr pa, std::uint32_t bytes,
                            bool lock, sim::TimePs start) = 0;
};

// A strided 2D region of virtual memory (rows of row_bytes, stride apart).
struct Region2D {
  vm::VirtAddr base = 0;
  std::uint64_t rows = 1;
  std::uint64_t row_bytes = 0;
  std::uint64_t stride = 0;  // 0 => dense

  std::uint64_t effective_stride() const noexcept {
    return stride ? stride : row_bytes;
  }
  std::uint64_t total_bytes() const noexcept { return rows * row_bytes; }
};

// Everything the DMA needs to translate addresses for one process.
struct TranslationContext {
  vm::Asid asid = 0;
  const vm::PageTable* table = nullptr;
  cpu::Mmu* mmu = nullptr;     // blocking path (shared TLB + walker)
  vm::Matlb* matlb = nullptr;  // predictive path; null => always block
};

struct DmaResult {
  sim::TimePs end_time = 0;
  std::uint64_t bytes = 0;
  std::uint64_t segments = 0;           // page-bounded bursts issued
  std::uint64_t translations = 0;
  std::uint64_t matlb_hits = 0;
  std::uint64_t blocking_walks = 0;     // translations that stalled the stream
  sim::TimePs translation_stall_ps = 0;
  bool fault = false;
  vm::VirtAddr fault_addr = 0;
};

struct DmaConfig {
  // Fixed engine overhead per programmed transfer (descriptor fetch etc.).
  sim::TimePs setup_ps = 1600;  // 4 MMAE cycles
  // Request pipelining: bursts in flight before issue stalls on the oldest
  // completion. Translation misses still stall issue (the engine cannot
  // compute the next physical address).
  unsigned max_outstanding = 8;
  // Issue pacing: the engine's port injects at link rate.
  double issue_bandwidth_bytes_per_second = 64e9;
};

class DmaEngine {
 public:
  DmaEngine(std::string name, int node, const DmaConfig& config,
            MemoryBackend& backend, mem::PhysicalMemory& memory);

  const std::string& name() const noexcept { return name_; }

  // Reads `region` into `out` (row-major, rows*row_bytes bytes).
  DmaResult read_region(const Region2D& region, std::span<std::uint8_t> out,
                        const TranslationContext& ctx, sim::TimePs start);

  // Writes `data` to `region`.
  DmaResult write_region(const Region2D& region,
                         std::span<const std::uint8_t> data,
                         const TranslationContext& ctx, sim::TimePs start);

  // MA_STASH: prefetch (and optionally lock) the region's lines into L3.
  DmaResult stash_region(const Region2D& region, bool lock,
                         const TranslationContext& ctx, sim::TimePs start);

  // MA_INIT: fill the region with a 64-bit pattern.
  DmaResult init_region(const Region2D& region, std::uint64_t pattern,
                        const TranslationContext& ctx, sim::TimePs start);

  // Engine availability (transfers on one engine serialize).
  sim::TimePs busy_until() const noexcept { return busy_until_; }

  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

 private:
  enum class Op { kRead, kWrite, kStash, kInit };
  DmaResult run(const Region2D& region, Op op, std::span<std::uint8_t> read_out,
                std::span<const std::uint8_t> write_data, bool lock,
                std::uint64_t pattern, const TranslationContext& ctx,
                sim::TimePs start);

  // Translate `va`; updates result counters and returns the completion time
  // of the translation (>= t). Sets result.fault on failure.
  sim::TimePs translate(vm::VirtAddr va, const TranslationContext& ctx,
                        sim::TimePs t, DmaResult& result, vm::PhysAddr* pa);

  std::string name_;
  int node_;
  DmaConfig config_;
  MemoryBackend& backend_;
  mem::PhysicalMemory& memory_;
  sim::TimePs busy_until_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace maco::mmae
