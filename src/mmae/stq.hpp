// Slave Task Queue (paper Section III.C).
//
// The MMAE-side mirror of the CPU's MTQ: receives a task's parameters from
// the CPU core (identified by the same MAID), parses and stores them
// locally, monitors execution, and reports status back to the matching MTQ
// entry. Buffered tasks execute automatically, in arrival order, when the
// active entry completes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <variant>
#include <vector>

#include "cpu/mtq.hpp"
#include "isa/encoding.hpp"
#include "isa/params.hpp"
#include "vm/types.hpp"

namespace maco::mmae {

enum class StqState : std::uint8_t {
  kFree,
  kPending,    // parameters buffered, waiting for the active task to finish
  kRunning,
  kDone,
  kException,
};

struct StqEntry {
  StqState state = StqState::kFree;
  cpu::Maid maid = 0;
  vm::Asid asid = 0;
  isa::Mnemonic op = isa::Mnemonic::kMaCfg;
  // Decoded parameters (the STQ "parses parameters and saves them at its
  // local registers").
  std::variant<std::monostate, isa::GemmParams, isa::MoveParams,
               isa::InitParams, isa::StashParams>
      params;
  cpu::ExceptionType exception = cpu::ExceptionType::kNone;
};

class SlaveTaskQueue {
 public:
  explicit SlaveTaskQueue(unsigned entries = 8);

  // Accept a command from the CPU; false when all entries are busy.
  bool push(cpu::Maid maid, isa::Mnemonic op, const isa::ParamBlock& block,
            vm::Asid asid);

  // Oldest pending entry index, if any (FIFO dispatch).
  std::optional<unsigned> next_pending() const;

  StqEntry& entry(unsigned index);
  const StqEntry& entry(unsigned index) const;
  unsigned capacity() const noexcept {
    return static_cast<unsigned>(entries_.size());
  }
  unsigned occupied() const noexcept;

  void mark_running(unsigned index);
  void complete(unsigned index, cpu::ExceptionType exception);
  // Frees the entry after status has been reported to the MTQ.
  void release(unsigned index);

 private:
  std::vector<StqEntry> entries_;
  std::deque<unsigned> pending_order_;
};

}  // namespace maco::mmae
