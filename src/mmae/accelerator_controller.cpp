#include "mmae/accelerator_controller.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::mmae {

AcceleratorController::AcceleratorController(sim::SimEngine& engine, int node,
                                             const MmaeConfig& config,
                                             MemoryBackend& backend,
                                             mem::PhysicalMemory& memory,
                                             cpu::CpuCore& cpu)
    : sim::Component(engine, "node" + std::to_string(node) + ".mmae"),
      config_(config), node_(node), stq_(config.stq_entries),
      ade_(name() + ".ade", node, config.dma, backend, memory),
      array_(config.sa),
      matlb_(name() + ".matlb", config.matlb_entries),
      cpu_(cpu) {
  // Default single-process lookup: the CPU's current context.
  table_lookup_ = [this](vm::Asid asid) -> const vm::PageTable* {
    return asid == cpu_.current_asid() ? cpu_.current_table() : nullptr;
  };
}

bool AcceleratorController::submit(cpu::Maid maid, isa::Mnemonic op,
                                   const isa::ParamBlock& params,
                                   vm::Asid asid) {
  if (!stq_.push(maid, op, params, asid)) return false;
  counter("tasks_accepted").inc();
  try_start_next();
  return true;
}

TranslationContext AcceleratorController::context_for(const StqEntry& entry) {
  TranslationContext ctx;
  ctx.asid = entry.asid;
  ctx.table = table_lookup_ ? table_lookup_(entry.asid) : nullptr;
  ctx.mmu = &cpu_.mmu();
  ctx.matlb = config_.use_matlb ? &matlb_ : nullptr;
  return ctx;
}

void AcceleratorController::try_start_next() {
  if (task_running_) return;
  const auto next = stq_.next_pending();
  if (!next) return;

  task_running_ = true;
  stq_.mark_running(*next);
  const StqEntry entry = stq_.entry(*next);  // copy: entry survives release
  const sim::TimePs start = std::max(now(), busy_until_);

  TaskReport report = execute_task(entry, start);
  busy_until_ = report.end;
  reports_.push_back(report);
  counter("tasks_executed").inc();
  counter("dma_bytes").inc(report.dma_bytes);

  const unsigned index = *next;
  engine().schedule_at(report.end, [this, index, report] {
    stq_.complete(index, report.exception);
    // Report status to the matching MTQ entry (paper: STQ "responds the
    // status of the GEMM task to the corresponding MTQ entry").
    if (report.exception == cpu::ExceptionType::kNone) {
      cpu_.mtq().mark_done(report.maid);
    } else {
      cpu_.mtq().mark_exception(report.maid, report.exception);
    }
    stq_.release(index);
    if (on_complete_) on_complete_(report.maid, report.exception, report.end);
    task_running_ = false;
    try_start_next();
  });
}

TaskReport AcceleratorController::execute_task(const StqEntry& entry,
                                               sim::TimePs start) {
  switch (entry.op) {
    case isa::Mnemonic::kMaCfg:
      return execute_gemm(entry, std::get<isa::GemmParams>(entry.params),
                          start);
    case isa::Mnemonic::kMaMove:
      return execute_move(entry, std::get<isa::MoveParams>(entry.params),
                          start);
    case isa::Mnemonic::kMaInit:
      return execute_init(entry, std::get<isa::InitParams>(entry.params),
                          start);
    case isa::Mnemonic::kMaStash:
      return execute_stash(entry, std::get<isa::StashParams>(entry.params),
                           start);
    default:
      MACO_UNREACHABLE("non-task mnemonic in STQ");
  }
}

TaskReport AcceleratorController::execute_gemm(const StqEntry& entry,
                                               const isa::GemmParams& p,
                                               sim::TimePs start) {
  TaskReport report;
  report.maid = entry.maid;
  report.op = entry.op;
  report.start = start;
  report.end = start;

  auto fail = [&](cpu::ExceptionType type) {
    report.exception = type;
    report.end = start + cycles_to_ps(16);  // config decode + abort
    return report;
  };

  if (p.m == 0 || p.n == 0 || p.k == 0) {
    return fail(cpu::ExceptionType::kInvalidConfig);
  }
  const std::uint64_t ttr = p.inner_tile_rows;
  const std::uint64_t ttc = p.inner_tile_cols;
  const std::uint64_t ttk = config_.inner_k;
  if (ttr == 0 || ttc == 0) return fail(cpu::ExceptionType::kInvalidConfig);
  // Inner tiles must fit one buffer bank (double buffering uses the other).
  const std::uint64_t elem = sizeof(double);
  if (!ade_.buffers().a.tile_fits(ttr * ttk * elem) ||
      !ade_.buffers().b.tile_fits(ttk * ttc * elem) ||
      !ade_.buffers().c.tile_fits(ttr * ttc * elem)) {
    return fail(cpu::ExceptionType::kBufferOverflow);
  }

  TranslationContext ctx = context_for(entry);
  if (ctx.table == nullptr) return fail(cpu::ExceptionType::kPageFault);

  // Functional matrices are FP64-backed; the precision mode drives SIMD
  // timing (see DESIGN.md).
  const vm::MatrixDesc a_desc{p.a_base, p.m, p.k, elem, 0};
  const vm::MatrixDesc b_desc{p.b_base, p.k, p.n, elem, 0};
  const vm::MatrixDesc c_desc{p.c_base, p.m, p.n, elem, 0};

  sa::SaConfig sa_config = config_.sa;
  sa_config.precision = p.precision;
  sa::SystolicArray array(sa_config);

  sim::TimePs sa_free = start;
  sim::TimePs last_end = start;
  sim::TimePs prev_load_end = start;

  sa::HostMatrix a_tile, b_tile, c_tile;

  const std::uint64_t tr = std::min<std::uint64_t>(p.tile_rows, p.m);
  const std::uint64_t tc = std::min<std::uint64_t>(p.tile_cols, p.n);

  for (std::uint64_t m0 = 0; m0 < p.m; m0 += tr) {
    const std::uint64_t m1 = std::min<std::uint64_t>(m0 + tr, p.m);
    for (std::uint64_t n0 = 0; n0 < p.n; n0 += tc) {
      const std::uint64_t n1 = std::min<std::uint64_t>(n0 + tc, p.n);
      for (std::uint64_t mm = m0; mm < m1; mm += ttr) {
        const std::uint64_t mrows = std::min(ttr, m1 - mm);
        for (std::uint64_t nn = n0; nn < n1; nn += ttc) {
          const std::uint64_t ncols = std::min(ttc, n1 - nn);
          const vm::TileDesc c_t{mm, nn, mrows, ncols};

          // C tile: stream in for accumulation, or start from zero.
          sim::TimePs dma_t = prev_load_end;
          if (p.accumulate) {
            if (config_.use_matlb) {
              matlb_.prefill(entry.asid, *ctx.table, ctx.mmu->walker(),
                             c_desc, c_t, prev_load_end);
            }
            const DmaResult c_load =
                ade_.load_tile(c_desc, c_t, c_tile, ctx, dma_t);
            if (c_load.fault) return fail(cpu::ExceptionType::kPageFault);
            report.dma_bytes += c_load.bytes;
            report.translation_stall_ps += c_load.translation_stall_ps;
            report.matlb_hits += c_load.matlb_hits;
            report.blocking_walks += c_load.blocking_walks;
            dma_t = c_load.end_time;
          } else {
            c_tile = sa::HostMatrix(mrows, ncols);
          }

          for (std::uint64_t kk = 0; kk < p.k; kk += ttk) {
            const std::uint64_t kdepth = std::min(ttk, p.k - kk);
            const vm::TileDesc a_t{mm, kk, mrows, kdepth};
            const vm::TileDesc b_t{kk, nn, kdepth, ncols};

            // Predictive translation: walks for the upcoming tiles issue
            // from the moment the previous loads finished, overlapping the
            // array's compute (Fig. 4).
            if (config_.use_matlb) {
              matlb_.prefill(entry.asid, *ctx.table, ctx.mmu->walker(),
                             a_desc, a_t, prev_load_end);
              matlb_.prefill(entry.asid, *ctx.table, ctx.mmu->walker(),
                             b_desc, b_t, prev_load_end);
            }

            const DmaResult a_load =
                ade_.load_tile(a_desc, a_t, a_tile, ctx, dma_t);
            if (a_load.fault) return fail(cpu::ExceptionType::kPageFault);
            const DmaResult b_load =
                ade_.load_tile(b_desc, b_t, b_tile, ctx, a_load.end_time);
            if (b_load.fault) return fail(cpu::ExceptionType::kPageFault);

            for (const DmaResult* r : {&a_load, &b_load}) {
              report.dma_bytes += r->bytes;
              report.translation_stall_ps += r->translation_stall_ps;
              report.matlb_hits += r->matlb_hits;
              report.blocking_walks += r->blocking_walks;
            }
            prev_load_end = b_load.end_time;
            dma_t = b_load.end_time;

            // Systolic array pass: starts when operands are resident and
            // the array is free (double-buffered banks).
            const sa::SaRunResult run = array.run(a_tile, b_tile, c_tile);
            const sim::TimePs sa_start = std::max(dma_t, sa_free);
            const sim::TimePs sa_end = sa_start + cycles_to_ps(run.cycles);
            report.sa_busy_ps += cycles_to_ps(run.cycles);
            report.macs += run.macs;
            sa_free = sa_end;
            // The next inner tile's loads overlap this compute.
            dma_t = prev_load_end;
          }

          const DmaResult c_store =
              ade_.store_tile(c_desc, c_t, c_tile, ctx, sa_free);
          if (c_store.fault) return fail(cpu::ExceptionType::kPageFault);
          report.dma_bytes += c_store.bytes;
          report.translation_stall_ps += c_store.translation_stall_ps;
          last_end = std::max(last_end, c_store.end_time);
        }
      }
    }
  }

  report.end = std::max(sa_free, last_end);
  return report;
}

TaskReport AcceleratorController::execute_move(const StqEntry& entry,
                                               const isa::MoveParams& p,
                                               sim::TimePs start) {
  TaskReport report;
  report.maid = entry.maid;
  report.op = entry.op;
  report.start = start;
  TranslationContext ctx = context_for(entry);
  if (ctx.table == nullptr || p.row_bytes == 0) {
    report.exception = ctx.table == nullptr
                           ? cpu::ExceptionType::kPageFault
                           : cpu::ExceptionType::kInvalidConfig;
    report.end = start + cycles_to_ps(16);
    return report;
  }
  const Region2D src{p.src, p.rows, p.row_bytes, p.src_stride};
  const Region2D dst{p.dst, p.rows, p.row_bytes, p.dst_stride};
  const DmaResult result = ade_.move_region(src, dst, ctx, start);
  report.dma_bytes = result.bytes;
  report.translation_stall_ps = result.translation_stall_ps;
  report.matlb_hits = result.matlb_hits;
  report.blocking_walks = result.blocking_walks;
  report.exception =
      result.fault ? cpu::ExceptionType::kPageFault : cpu::ExceptionType::kNone;
  report.end = result.end_time;
  return report;
}

TaskReport AcceleratorController::execute_init(const StqEntry& entry,
                                               const isa::InitParams& p,
                                               sim::TimePs start) {
  TaskReport report;
  report.maid = entry.maid;
  report.op = entry.op;
  report.start = start;
  TranslationContext ctx = context_for(entry);
  if (ctx.table == nullptr || p.row_bytes == 0) {
    report.exception = ctx.table == nullptr
                           ? cpu::ExceptionType::kPageFault
                           : cpu::ExceptionType::kInvalidConfig;
    report.end = start + cycles_to_ps(16);
    return report;
  }
  const Region2D dst{p.dst, p.rows, p.row_bytes, p.stride};
  const DmaResult result = ade_.init_region(dst, p.pattern, ctx, start);
  report.dma_bytes = result.bytes;
  report.translation_stall_ps = result.translation_stall_ps;
  report.exception =
      result.fault ? cpu::ExceptionType::kPageFault : cpu::ExceptionType::kNone;
  report.end = result.end_time;
  return report;
}

TaskReport AcceleratorController::execute_stash(const StqEntry& entry,
                                                const isa::StashParams& p,
                                                sim::TimePs start) {
  TaskReport report;
  report.maid = entry.maid;
  report.op = entry.op;
  report.start = start;
  TranslationContext ctx = context_for(entry);
  if (ctx.table == nullptr || p.row_bytes == 0) {
    report.exception = ctx.table == nullptr
                           ? cpu::ExceptionType::kPageFault
                           : cpu::ExceptionType::kInvalidConfig;
    report.end = start + cycles_to_ps(16);
    return report;
  }
  const Region2D region{p.base, p.rows, p.row_bytes, p.stride};
  const DmaResult result = ade_.stash_region(region, p.lock, ctx, start);
  report.dma_bytes = result.bytes;
  report.translation_stall_ps = result.translation_stall_ps;
  report.exception =
      result.fault ? cpu::ExceptionType::kPageFault : cpu::ExceptionType::kNone;
  report.end = result.end_time;
  return report;
}

}  // namespace maco::mmae
