#include "mmae/dma.hpp"

#include <algorithm>
#include <deque>
#include <cstring>
#include <vector>

#include "util/assert.hpp"

namespace maco::mmae {

DmaEngine::DmaEngine(std::string name, int node, const DmaConfig& config,
                     MemoryBackend& backend, mem::PhysicalMemory& memory)
    : name_(std::move(name)), node_(node), config_(config), backend_(backend),
      memory_(memory) {}

sim::TimePs DmaEngine::translate(vm::VirtAddr va,
                                 const TranslationContext& ctx, sim::TimePs t,
                                 DmaResult& result, vm::PhysAddr* pa) {
  ++result.translations;
  if (ctx.matlb != nullptr) {
    const auto hit = ctx.matlb->lookup(va, t);
    if (hit.hit) {
      ++result.matlb_hits;
      // A late prediction exposes only the residual walk time.
      result.translation_stall_ps += hit.wait;
      *pa = hit.phys;
      return t + hit.wait;
    }
  }
  // Blocking path: shared TLB, then the walker; the stream stalls.
  MACO_ASSERT_MSG(ctx.mmu != nullptr && ctx.table != nullptr,
                  name_ << ": no translation path configured");
  const cpu::TranslationResult tr =
      ctx.mmu->translate_for_accelerator(ctx.asid, *ctx.table, va);
  if (!tr.valid) {
    result.fault = true;
    result.fault_addr = va;
    return t;
  }
  ++result.blocking_walks;
  result.translation_stall_ps += tr.latency;
  *pa = tr.phys;
  return t + tr.latency;
}

DmaResult DmaEngine::run(const Region2D& region, Op op,
                         std::span<std::uint8_t> read_out,
                         std::span<const std::uint8_t> write_data, bool lock,
                         std::uint64_t pattern,
                         const TranslationContext& ctx, sim::TimePs start) {
  DmaResult result;
  // Bursts pipeline: `issue` paces the engine's port at link rate and
  // stalls on translation misses or when max_outstanding requests are in
  // flight; individual burst latencies overlap.
  sim::TimePs issue = std::max(start, busy_until_) + config_.setup_ps;
  sim::TimePs done = issue;
  std::deque<sim::TimePs> outstanding;

  std::uint64_t buffer_offset = 0;
  for (std::uint64_t row = 0; row < region.rows && !result.fault; ++row) {
    vm::VirtAddr va = region.base + row * region.effective_stride();
    std::uint64_t remaining = region.row_bytes;
    while (remaining > 0) {
      // Burst length: to the end of the page or the row, whichever first.
      const std::uint64_t to_page_end =
          vm::kPageSize - vm::page_offset(va);
      const std::uint32_t burst =
          static_cast<std::uint32_t>(std::min(remaining, to_page_end));

      vm::PhysAddr pa = 0;
      issue = translate(va, ctx, issue, result, &pa);
      if (result.fault) break;
      ++result.segments;

      if (outstanding.size() >= config_.max_outstanding) {
        issue = std::max(issue, outstanding.front());
        outstanding.pop_front();
      }

      sim::TimePs completion = issue;
      switch (op) {
        case Op::kRead:
          MACO_ASSERT(buffer_offset + burst <= read_out.size());
          completion = backend_.read(
              node_, pa, read_out.data() + buffer_offset, burst, issue);
          break;
        case Op::kWrite:
          MACO_ASSERT(buffer_offset + burst <= write_data.size());
          completion = backend_.write(
              node_, pa, write_data.data() + buffer_offset, burst, issue);
          break;
        case Op::kStash:
          completion = backend_.stash(node_, pa, burst, lock, issue);
          break;
        case Op::kInit: {
          // Functional fill through the backend write path.
          std::vector<std::uint8_t> fill(burst);
          for (std::uint32_t i = 0; i < burst; ++i) {
            fill[i] = static_cast<std::uint8_t>(pattern >> ((i % 8) * 8));
          }
          completion = backend_.write(node_, pa, fill.data(), burst, issue);
          break;
        }
      }
      outstanding.push_back(completion);
      done = std::max(done, completion);
      issue += static_cast<sim::TimePs>(
          static_cast<double>(burst) /
          config_.issue_bandwidth_bytes_per_second * 1e12);

      result.bytes += burst;
      buffer_offset += burst;
      va += burst;
      remaining -= burst;
    }
  }

  busy_until_ = std::max(done, issue);
  total_bytes_ += result.bytes;
  result.end_time = busy_until_;
  return result;
}

DmaResult DmaEngine::read_region(const Region2D& region,
                                 std::span<std::uint8_t> out,
                                 const TranslationContext& ctx,
                                 sim::TimePs start) {
  MACO_ASSERT_MSG(out.size() >= region.total_bytes(),
                  name_ << ": read buffer too small");
  return run(region, Op::kRead, out, {}, false, 0, ctx, start);
}

DmaResult DmaEngine::write_region(const Region2D& region,
                                  std::span<const std::uint8_t> data,
                                  const TranslationContext& ctx,
                                  sim::TimePs start) {
  MACO_ASSERT_MSG(data.size() >= region.total_bytes(),
                  name_ << ": write data too small");
  return run(region, Op::kWrite, {}, data, false, 0, ctx, start);
}

DmaResult DmaEngine::stash_region(const Region2D& region, bool lock,
                                  const TranslationContext& ctx,
                                  sim::TimePs start) {
  return run(region, Op::kStash, {}, {}, lock, 0, ctx, start);
}

DmaResult DmaEngine::init_region(const Region2D& region, std::uint64_t pattern,
                                 const TranslationContext& ctx,
                                 sim::TimePs start) {
  return run(region, Op::kInit, {}, {}, false, pattern, ctx, start);
}

}  // namespace maco::mmae
