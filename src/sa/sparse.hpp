// Structured 2:4 sparsity extension (beyond the paper).
//
// The paper's related work surveys sparse GEMM support on CPUs (SAVE,
// SparCE, VEGETA); this module explores the natural MACO extension: the
// stationary B operand (weights) is pruned 2:4 along the reduction
// dimension — every group of 4 consecutive k-elements keeps at most 2
// nonzeros — so the array preloads compressed B blocks plus 2-bit indices
// and streams only the matching A elements. The reduction depth halves at
// the cost of an index-select stage in each PE.
//
// Functional pruning runs on HostMatrix; the timing extension mirrors
// sa::compute_sa_timing with compressed k and a per-pass select overhead.
#pragma once

#include <cstdint>

#include "sa/host_matrix.hpp"
#include "sa/latency_model.hpp"
#include "sa/systolic_array.hpp"

namespace maco::sa {

// Prunes `m` in place to 2:4 along its rows-of-4 in the ROW dimension
// (groups m[g*4+0..3][j] per column j — the GEMM's reduction axis for the
// B operand). Keeps the 2 largest magnitudes per group. Returns the
// fraction of nonzeros kept (<= 0.5 for full groups).
double prune_2_4_rows(HostMatrix& m);

// True if every complete 4-row group of every column has <= 2 nonzeros.
bool is_2_4_sparse_rows(const HostMatrix& m);

struct SparseSaConfig {
  SaConfig dense{};             // the underlying array
  unsigned group = 4;           // N:M group size (M)
  unsigned kept = 2;            // nonzeros kept per group (N)
  // Extra cycles per pass for the index-select/mux stage feeding A.
  sim::Cycles select_overhead_cycles = 2;
};

struct SparseSaTiming {
  std::uint64_t dense_cycles = 0;    // same shape, dense array
  std::uint64_t sparse_cycles = 0;   // with 2:4-compressed B
  double speedup = 0.0;
  std::uint64_t k_compressed = 0;    // effective reduction depth
};

// Timing for C(m×n) += A(m×k) * B(k×n) with B pruned kept:group along k.
SparseSaTiming compute_sparse_sa_timing(const TileShape& shape,
                                        const SparseSaConfig& config);

}  // namespace maco::sa
