#include "sa/systolic_array.hpp"

#include <vector>

#include "sa/latency_model.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::sa {

SystolicArray::SystolicArray(const SaConfig& config) : config_(config) {
  MACO_ASSERT_MSG(config.rows > 0 && config.cols > 0,
                  "systolic array must have at least one PE");
}

namespace {

// Per-PE pipeline registers (previous-cycle outputs), one slot per SIMD lane.
struct PeState {
  std::vector<double> a;     // A value registered toward the right neighbor
  std::vector<double> psum;  // partial sum registered toward the PE below
};

}  // namespace

SaRunResult SystolicArray::run(const HostMatrix& a, const HostMatrix& b,
                               HostMatrix& c) {
  MACO_ASSERT(a.cols() == b.rows());
  MACO_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());

  const TileShape shape{a.rows(), b.cols(), a.cols()};
  const SaTiming timing = compute_sa_timing(shape, config_);

  if (config_.exact_pe_sim) {
    run_exact(a, b, c, timing);
  } else {
    run_fast(a, b, c, timing);
  }

  SaRunResult result;
  result.cycles = timing.total_cycles;
  result.passes = timing.passes;
  result.macs = shape.macs();
  const double capacity = static_cast<double>(result.cycles) *
                          static_cast<double>(config_.rows) * config_.cols *
                          simd_ways(config_.precision);
  result.utilization =
      capacity > 0 ? static_cast<double>(result.macs) / capacity : 0.0;
  return result;
}

// The array accumulates each C element sequentially: within pass q (k-block
// kb), the partial sum flows down the column picking up products for
// kk = kb*p_rows .. kb*p_rows + p_rows - 1 in ascending order, with an
// explicit +0.0 product for padded kk >= k; passes over later k-blocks read
// the value the previous pass wrote. Replaying that per-element order here
// (including the padded zero-adds) reproduces the register-level result bit
// for bit. The i-k-j loop interchange below only reorders work across
// DIFFERENT C elements — each element still sees ascending kk, padded adds
// last — so B rows stream contiguously and the j loop vectorizes without
// any FP reassociation.
void SystolicArray::run_fast(const HostMatrix& a, const HostMatrix& b,
                             HostMatrix& c, const SaTiming& timing) const {
  const unsigned p_rows = config_.rows;
  const std::uint64_t m = a.rows();
  const std::uint64_t k = a.cols();
  const std::uint64_t n = b.cols();
  const std::uint64_t kk_padded = timing.k_blocks * p_rows;

  for (std::uint64_t row = 0; row < m; ++row) {
    double* crow = c.row_ptr(row);
    const double* arow = a.row_ptr(row);
    for (std::uint64_t kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      const double* brow = b.row_ptr(kk);
      for (std::uint64_t col = 0; col < n; ++col) {
        // Same expression shape as the register path's psum update, so a
        // compiler that contracts one mul+add into an FMA contracts both.
        const double product = av * brow[col];
        crow[col] = crow[col] + product;
      }
    }
    // Padded k positions of the last k-block: a and b both feed 0.0, so
    // each element accumulates an explicit +0.0 product (which the array
    // really performs — it flushes a possible -0.0 to +0.0).
    for (std::uint64_t kk = k; kk < kk_padded; ++kk) {
      for (std::uint64_t col = 0; col < n; ++col) {
        const double product = 0.0 * 0.0;
        crow[col] = crow[col] + product;
      }
    }
  }
}

void SystolicArray::run_exact(const HostMatrix& a, const HostMatrix& b,
                              HostMatrix& c, const SaTiming& timing) const {
  const unsigned p_rows = config_.rows;
  const unsigned p_cols = config_.cols;
  const unsigned ways = simd_ways(config_.precision);
  const std::uint64_t m = a.rows();
  const std::uint64_t k = a.cols();
  const std::uint64_t n = b.cols();

  const std::uint64_t nb_count = timing.n_blocks;
  const std::uint64_t slots = timing.slots_per_pass;  // hazard-padded
  const std::uint64_t passes = timing.passes;
  const std::uint64_t total_slots = passes * slots;

  // Pass order matches Fig. 1: all N blocks of k-block 0, then k-block 1...
  auto pass_kb = [&](std::uint64_t q) { return q / nb_count; };
  auto pass_nb = [&](std::uint64_t q) { return q % nb_count; };

  // Stationary B element at PE (kr, nc) while pass q streams through it.
  auto b_value = [&](std::uint64_t q, unsigned kr, unsigned nc) -> double {
    const std::uint64_t kk = pass_kb(q) * p_rows + kr;
    const std::uint64_t nn = pass_nb(q) * p_cols + nc;
    return (kk < k && nn < n) ? b.at(kk, nn) : 0.0;
  };

  // A feed into array row kr at global slot g (lane = SIMD way along M).
  auto feed_a = [&](std::uint64_t g, unsigned kr, unsigned lane) -> double {
    const std::uint64_t q = g / slots;
    const std::uint64_t row = (g % slots) * ways + lane;
    const std::uint64_t kk = pass_kb(q) * p_rows + kr;
    return (row < m && kk < k) ? a.at(row, kk) : 0.0;
  };

  // Maps (global slot, array column, lane) to the C element it carries.
  auto c_index = [&](std::uint64_t g, unsigned nc, unsigned lane,
                     std::uint64_t* row_out, std::uint64_t* col_out) -> bool {
    const std::uint64_t q = g / slots;
    const std::uint64_t row = (g % slots) * ways + lane;
    const std::uint64_t col = pass_nb(q) * p_cols + nc;
    if (row >= m || col >= n) return false;
    *row_out = row;
    *col_out = col;
    return true;
  };

  std::vector<PeState> regs(p_rows * p_cols);
  std::vector<PeState> next(p_rows * p_cols);
  for (auto* bank : {&regs, &next}) {
    for (auto& pe : *bank) {
      pe.a.assign(ways, 0.0);
      pe.psum.assign(ways, 0.0);
    }
  }
  auto pe_at = [&](unsigned kr, unsigned nc) -> PeState& {
    return regs[kr * p_cols + nc];
  };

  for (std::uint64_t t = 0; t < timing.stream_cycles; ++t) {
    for (unsigned kr = 0; kr < p_rows; ++kr) {
      // Feed validity at the row entry (nc == 0).
      const bool feed_valid = t >= kr && (t - kr) < total_slots;
      for (unsigned nc = 0; nc < p_cols; ++nc) {
        PeState& out = next[kr * p_cols + nc];
        // Both the A and psum wavefronts carry global slot t - kr - nc at
        // this PE; the slot is in flight iff it is within the stream.
        const bool slot_valid =
            t >= kr + nc && (t - kr - nc) < total_slots;
        const std::uint64_t g = slot_valid ? (t - kr - nc) : 0;
        const std::uint64_t q = g / slots;
        for (unsigned lane = 0; lane < ways; ++lane) {
          // A value arriving this cycle: feed at the left edge, otherwise
          // the left neighbor's registered value (shift unconditionally so
          // in-flight values keep moving after the feed ends).
          const double a_cur =
              (nc == 0) ? (feed_valid ? feed_a(t - kr, kr, lane) : 0.0)
                        : pe_at(kr, nc - 1).a[lane];
          // Partial sum arriving from above; the top row streams C in.
          double psum_cur = 0.0;
          if (kr == 0) {
            if (slot_valid) {
              std::uint64_t row, col;
              psum_cur = c_index(g, nc, lane, &row, &col) ? c.at(row, col)
                                                          : 0.0;
            }
          } else {
            psum_cur = pe_at(kr - 1, nc).psum[lane];
          }
          const double product =
              slot_valid ? a_cur * b_value(q, kr, nc) : 0.0;
          out.a[lane] = a_cur;
          out.psum[lane] = psum_cur + product;
        }
        // Bottom row: updated C values exit the array.
        if (kr == p_rows - 1 && slot_valid) {
          for (unsigned lane = 0; lane < ways; ++lane) {
            std::uint64_t row, col;
            if (c_index(g, nc, lane, &row, &col)) {
              c.at(row, col) = out.psum[lane];
            }
          }
        }
      }
    }
    regs.swap(next);
  }
}

}  // namespace maco::sa
