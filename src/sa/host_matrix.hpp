// Host-side dense matrix used for functional verification.
//
// Values are held in double regardless of the simulated precision mode: the
// precision mode changes SIMD width and therefore timing, while functional
// checks compare against a double-precision reference (documented in
// DESIGN.md; the paper's evaluation is throughput, not numerics).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace maco::sa {

class HostMatrix {
 public:
  HostMatrix() = default;
  HostMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) {
    MACO_ASSERT_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                      << ") out of bounds");
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    MACO_ASSERT_MSG(r < rows_ && c < cols_, "index (" << r << "," << c
                                                      << ") out of bounds");
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const noexcept { return data_; }

  double* row_ptr(std::size_t r) {
    MACO_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row_ptr(std::size_t r) const {
    MACO_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

  static HostMatrix random(std::size_t rows, std::size_t cols,
                           util::Rng& rng, double lo = -1.0, double hi = 1.0) {
    HostMatrix m(rows, cols);
    for (auto& v : m.data_) v = rng.next_double(lo, hi);
    return m;
  }

  bool approx_equal(const HostMatrix& other, double tolerance = 1e-9) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      if (std::abs(data_[i] - other.data_[i]) > tolerance) return false;
    }
    return true;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// C += A * B, straightforward triple loop; the oracle for every GEMM test.
inline void reference_gemm(const HostMatrix& a, const HostMatrix& b,
                           HostMatrix& c) {
  MACO_ASSERT(a.cols() == b.rows());
  MACO_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
}

}  // namespace maco::sa
