#include "sa/tile_buffer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace maco::sa {

TileBuffer::TileBuffer(std::string name, std::uint64_t capacity_bytes,
                       unsigned banks)
    : name_(std::move(name)), capacity_(capacity_bytes), banks_(banks) {
  MACO_ASSERT_MSG(banks_ > 0 && capacity_ % banks_ == 0,
                  "buffer " << name_ << ": capacity " << capacity_
                            << " not divisible into " << banks_ << " banks");
}

bool TileBuffer::acquire(std::uint64_t bytes) noexcept {
  if (occupied_ + bytes > bank_bytes()) return false;
  occupied_ += bytes;
  high_water_ = std::max(high_water_, occupied_);
  return true;
}

void TileBuffer::release(std::uint64_t bytes) noexcept {
  occupied_ = bytes >= occupied_ ? 0 : occupied_ - bytes;
}

BufferSet BufferSet::maco_default() {
  return BufferSet{TileBuffer("a_buffer", 64 * util::kKiB),
                   TileBuffer("b_buffer", 64 * util::kKiB),
                   TileBuffer("c_buffer", 64 * util::kKiB)};
}

}  // namespace maco::sa
