// MMAE on-chip tile buffers (paper: 192 KiB total across A/B/C).
//
// Each buffer is bank-organized for double buffering: the DMA fills one bank
// while the systolic array drains the other. The model tracks occupancy and
// enforces capacity — a tile that does not fit is a configuration error the
// accelerator controller reports as an exception.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace maco::sa {

class TileBuffer {
 public:
  TileBuffer(std::string name, std::uint64_t capacity_bytes,
             unsigned banks = 2);

  const std::string& name() const noexcept { return name_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t bank_bytes() const noexcept { return capacity_ / banks_; }
  unsigned banks() const noexcept { return banks_; }

  // Whether one bank can hold `bytes` (a tile occupies one bank).
  bool tile_fits(std::uint64_t bytes) const noexcept {
    return bytes <= bank_bytes();
  }

  // Occupancy accounting for the active bank.
  bool acquire(std::uint64_t bytes) noexcept;
  void release(std::uint64_t bytes) noexcept;
  std::uint64_t occupied_bytes() const noexcept { return occupied_; }
  std::uint64_t high_water_bytes() const noexcept { return high_water_; }

  // Double-buffer bank swap (fill bank becomes drain bank).
  void swap_banks() noexcept { active_bank_ = (active_bank_ + 1) % banks_; }
  unsigned active_bank() const noexcept { return active_bank_; }

 private:
  std::string name_;
  std::uint64_t capacity_;
  unsigned banks_;
  unsigned active_bank_ = 0;
  std::uint64_t occupied_ = 0;
  std::uint64_t high_water_ = 0;
};

// The MMAE's three buffers with the paper's 192 KiB budget split evenly:
// 64 KiB each, two banks, so one bank holds a 64×64 FP64 tile (32 KiB).
struct BufferSet {
  TileBuffer a;
  TileBuffer b;
  TileBuffer c;

  static BufferSet maco_default();
  std::uint64_t total_capacity() const noexcept {
    return a.capacity_bytes() + b.capacity_bytes() + c.capacity_bytes();
  }
};

}  // namespace maco::sa
