// Numeric precisions supported by the MMAE systolic array.
//
// The paper extends the classical dataflow with SIMD-like compute modes:
// FP64 (1-way), 2-way FP32 (Fig. 2(c)) and 4-way FP16 (Fig. 2(d)). The SIMD
// ways run along the M dimension: each PE consumes `ways` A rows per cycle
// against its stationary B element.
#pragma once

#include <cstdint>

namespace maco::sa {

enum class Precision { kFp64, kFp32, kFp16 };

constexpr unsigned simd_ways(Precision p) noexcept {
  switch (p) {
    case Precision::kFp64: return 1;
    case Precision::kFp32: return 2;
    case Precision::kFp16: return 4;
  }
  return 1;
}

constexpr unsigned element_bytes(Precision p) noexcept {
  switch (p) {
    case Precision::kFp64: return 8;
    case Precision::kFp32: return 4;
    case Precision::kFp16: return 2;
  }
  return 8;
}

constexpr const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::kFp64: return "FP64";
    case Precision::kFp32: return "FP32";
    case Precision::kFp16: return "FP16";
  }
  return "?";
}

}  // namespace maco::sa
