// Cycle-accurate input-stationary systolic array (paper Fig. 1 / Fig. 2).
//
// Geometry: array row index = K dimension, array column index = N dimension.
// A p×p block of B is stationary (B[k][n] in PE[k][n]). A values stream
// left-to-right along array rows; partial sums flow top-to-bottom along
// array columns, entering as the current C value and exiting as the updated
// C value. A tile GEMM iterates B blocks in the paper's order (k-outer,
// n-inner), streaming the full A block column through the array per pass
// while C circulates through the on-chip buffer.
//
// The register-level simulation is exact in both function and cycle count;
// `latency_model.hpp` provides the matching closed form used at system
// scale, and tests assert the two agree.
#pragma once

#include <cstdint>

#include "sa/host_matrix.hpp"
#include "sa/types.hpp"
#include "sim/time.hpp"

namespace maco::sa {

struct SaConfig {
  unsigned rows = 4;  // p: array height (K direction)
  unsigned cols = 4;  // p: array width (N direction)
  Precision precision = Precision::kFp64;
  // Double-buffered stationary registers let the next B block preload during
  // the current pass; without them each pass pays a `rows`-cycle preload.
  bool double_buffered_b = true;
};

struct SaRunResult {
  sim::Cycles cycles = 0;
  std::uint64_t macs = 0;        // useful multiply-accumulates performed
  std::uint64_t passes = 0;      // B-block passes executed
  double utilization = 0.0;      // macs / (cycles * rows * cols * ways)
};

class SystolicArray {
 public:
  explicit SystolicArray(const SaConfig& config);

  const SaConfig& config() const noexcept { return config_; }

  // C += A * B with functional results written into `c`.
  // Shapes: a is m×k, b is k×n, c is m×n; none need divide the array size.
  SaRunResult run(const HostMatrix& a, const HostMatrix& b, HostMatrix& c);

 private:
  SaConfig config_;
};

}  // namespace maco::sa
