// Cycle-accurate input-stationary systolic array (paper Fig. 1 / Fig. 2).
//
// Geometry: array row index = K dimension, array column index = N dimension.
// A p×p block of B is stationary (B[k][n] in PE[k][n]). A values stream
// left-to-right along array rows; partial sums flow top-to-bottom along
// array columns, entering as the current C value and exiting as the updated
// C value. A tile GEMM iterates B blocks in the paper's order (k-outer,
// n-inner), streaming the full A block column through the array per pass
// while C circulates through the on-chip buffer.
//
// The register-level simulation is exact in both function and cycle count;
// `latency_model.hpp` provides the matching closed form used at system
// scale, and tests assert the two agree.
//
// Two functional paths compute the identical result:
//  - exact_pe_sim=true simulates every PE register every cycle (the
//    reference, and the dominant cost of exec=lockstep detailed runs);
//  - exact_pe_sim=false (default) replays the same floating-point
//    accumulation order directly — ascending k within each k-block, padded
//    +0.0 products included — so C is bit-identical while the per-cycle
//    register machinery is skipped. Cycle counts come from the closed form
//    either way. tests/test_equivalence.cpp pins the bit-equality.
#pragma once

#include <cstdint>

#include "sa/host_matrix.hpp"
#include "sa/types.hpp"
#include "sim/time.hpp"

namespace maco::sa {

struct SaTiming;  // latency_model.hpp

struct SaConfig {
  unsigned rows = 4;  // p: array height (K direction)
  unsigned cols = 4;  // p: array width (N direction)
  Precision precision = Precision::kFp64;
  // Double-buffered stationary registers let the next B block preload during
  // the current pass; without them each pass pays a `rows`-cycle preload.
  bool double_buffered_b = true;
  // Simulate every PE register every cycle instead of the order-preserving
  // direct evaluation. Same bits, ~25× slower; exec=lockstep sets this.
  bool exact_pe_sim = false;
};

struct SaRunResult {
  sim::Cycles cycles = 0;
  std::uint64_t macs = 0;        // useful multiply-accumulates performed
  std::uint64_t passes = 0;      // B-block passes executed
  double utilization = 0.0;      // macs / (cycles * rows * cols * ways)
};

class SystolicArray {
 public:
  explicit SystolicArray(const SaConfig& config);

  const SaConfig& config() const noexcept { return config_; }

  // C += A * B with functional results written into `c`.
  // Shapes: a is m×k, b is k×n, c is m×n; none need divide the array size.
  SaRunResult run(const HostMatrix& a, const HostMatrix& b, HostMatrix& c);

 private:
  // Register-level reference: every PE pipeline register, every cycle.
  void run_exact(const HostMatrix& a, const HostMatrix& b, HostMatrix& c,
                 const SaTiming& timing) const;
  // Direct evaluation in the array's exact accumulation order.
  void run_fast(const HostMatrix& a, const HostMatrix& b, HostMatrix& c,
                const SaTiming& timing) const;

  SaConfig config_;
};

}  // namespace maco::sa
