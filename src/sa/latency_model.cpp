#include "sa/latency_model.hpp"

#include "sa/systolic_array.hpp"
#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::sa {

SaTiming compute_sa_timing(const TileShape& shape, const SaConfig& config) {
  MACO_ASSERT_MSG(shape.m > 0 && shape.n > 0 && shape.k > 0,
                  "degenerate tile " << shape.m << "x" << shape.n << "x"
                                     << shape.k);
  const std::uint64_t p_rows = config.rows;
  const std::uint64_t p_cols = config.cols;
  const std::uint64_t ways = simd_ways(config.precision);

  SaTiming t;
  t.k_blocks = util::ceil_div(shape.k, p_rows);
  t.n_blocks = util::ceil_div(shape.n, p_cols);
  t.passes = t.k_blocks * t.n_blocks;
  t.slots_per_pass = util::ceil_div(shape.m, ways);

  // RAW hazard through the C buffer: pass q reads the C values written by
  // pass q - n_blocks (same N block, previous K block). The write for slot j
  // exits the bottom p_rows cycles after the read wavefront enters, so the
  // dependent pass must start at least p_rows slots later:
  //   n_blocks * slots >= p_rows.
  if (t.k_blocks > 1 && t.n_blocks * t.slots_per_pass < p_rows) {
    t.slots_per_pass = util::ceil_div(p_rows, t.n_blocks);
  }

  // Last slot enters array row p_rows-1 at (passes*slots - 1) + (p_rows - 1);
  // its partial sum then needs one more cycle at the bottom PE of the last
  // column, which it reaches after p_cols - 1 lateral steps of the psum
  // wavefront: stream = passes*slots + (p_rows - 1) + (p_cols - 1).
  t.stream_cycles =
      t.passes * t.slots_per_pass + (p_rows - 1) + (p_cols - 1);

  // Stationary-operand load: with double-buffered B registers only the
  // initial block load (p_rows cycles) is exposed; otherwise every pass
  // serializes a p_rows-cycle preload.
  const sim::Cycles preload =
      config.double_buffered_b ? p_rows : t.passes * p_rows;
  t.total_cycles = t.stream_cycles + preload;

  const double capacity = static_cast<double>(t.total_cycles) *
                          static_cast<double>(p_rows * p_cols * ways);
  t.utilization = static_cast<double>(shape.macs()) / capacity;
  return t;
}

sim::Cycles tile_gemm_cycles(const TileShape& shape, const SaConfig& config) {
  return compute_sa_timing(shape, config).total_cycles;
}

}  // namespace maco::sa
