// Closed-form timing of the systolic array, exactly matching the
// register-level simulation in systolic_array.cpp (asserted by tests).
//
// Used by the system timing model where register-level simulation of
// paper-scale matrices (up to 9216²) would be intractable.
#pragma once

#include <cstdint>

#include "sa/types.hpp"
#include "sim/time.hpp"

namespace maco::sa {

struct SaConfig;  // defined in systolic_array.hpp

struct TileShape {
  std::uint64_t m = 0;  // rows of A / C
  std::uint64_t n = 0;  // cols of B / C
  std::uint64_t k = 0;  // cols of A / rows of B

  std::uint64_t flops() const noexcept { return 2 * m * n * k; }
  std::uint64_t macs() const noexcept { return m * n * k; }
};

struct SaTiming {
  std::uint64_t k_blocks = 0;       // ceil(k / p_rows)
  std::uint64_t n_blocks = 0;       // ceil(n / p_cols)
  std::uint64_t passes = 0;         // k_blocks * n_blocks
  std::uint64_t slots_per_pass = 0; // ceil(m / ways), hazard-padded
  sim::Cycles stream_cycles = 0;    // cycles with data in flight
  sim::Cycles total_cycles = 0;     // including B preload policy
  double utilization = 0.0;         // useful MACs / PE-cycles
};

// `config` is read for rows/cols/precision/double_buffered_b.
SaTiming compute_sa_timing(const TileShape& shape, const SaConfig& config);

// Convenience: cycles for a tile on the given config.
sim::Cycles tile_gemm_cycles(const TileShape& shape, const SaConfig& config);

}  // namespace maco::sa
