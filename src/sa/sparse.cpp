#include "sa/sparse.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/assert.hpp"
#include "util/bits.hpp"

namespace maco::sa {

double prune_2_4_rows(HostMatrix& m) {
  std::uint64_t kept = 0;
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t g = 0; g + 4 <= m.rows(); g += 4) {
      // Rank the 4 magnitudes; zero the smallest two.
      std::array<std::size_t, 4> index{g, g + 1, g + 2, g + 3};
      std::sort(index.begin(), index.end(),
                [&](std::size_t x, std::size_t y) {
                  return std::abs(m.at(x, c)) > std::abs(m.at(y, c));
                });
      m.at(index[2], c) = 0.0;
      m.at(index[3], c) = 0.0;
      for (std::size_t i = 0; i < 4; ++i) {
        if (m.at(g + i, c) != 0.0) ++kept;
      }
      total += 4;
    }
  }
  return total ? static_cast<double>(kept) / static_cast<double>(total) : 0.0;
}

bool is_2_4_sparse_rows(const HostMatrix& m) {
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t g = 0; g + 4 <= m.rows(); g += 4) {
      int nonzero = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        if (m.at(g + i, c) != 0.0) ++nonzero;
      }
      if (nonzero > 2) return false;
    }
  }
  return true;
}

SparseSaTiming compute_sparse_sa_timing(const TileShape& shape,
                                        const SparseSaConfig& config) {
  MACO_ASSERT(config.group > 0 && config.kept > 0 &&
              config.kept <= config.group);
  SparseSaTiming timing;
  timing.dense_cycles =
      compute_sa_timing(shape, config.dense).total_cycles;

  // Compressed reduction depth: full groups keep `kept` of `group`
  // elements; a ragged tail stays dense.
  const std::uint64_t full_groups = shape.k / config.group;
  const std::uint64_t tail = shape.k % config.group;
  timing.k_compressed = full_groups * config.kept + tail;

  // Same dataflow on the compressed depth, plus the select stage per pass.
  TileShape compressed = shape;
  compressed.k = std::max<std::uint64_t>(1, timing.k_compressed);
  const SaTiming base = compute_sa_timing(compressed, config.dense);
  timing.sparse_cycles =
      base.total_cycles + base.passes * config.select_overhead_cycles;
  timing.speedup = timing.sparse_cycles
                       ? static_cast<double>(timing.dense_cycles) /
                             static_cast<double>(timing.sparse_cycles)
                       : 0.0;
  return timing;
}

}  // namespace maco::sa
