#include "cpu/core.hpp"

#include "util/assert.hpp"

namespace maco::cpu {

namespace {

// Issue cost in CPU cycles per MPAIS instruction. MA_CFG and the data
// migration ops run a micro-op sequence (allocate MTQ entry, read six
// registers, send to MMAE); the queries are register-file reads plus an
// MTQ port access.
constexpr sim::Cycles issue_cost(isa::Mnemonic op) noexcept {
  switch (op) {
    case isa::Mnemonic::kMaMove:
    case isa::Mnemonic::kMaInit:
    case isa::Mnemonic::kMaStash:
    case isa::Mnemonic::kMaCfg:
      return 8;
    case isa::Mnemonic::kMaRead:
    case isa::Mnemonic::kMaState:
      return 4;
    case isa::Mnemonic::kMaClear:
      return 3;
  }
  return 1;
}

}  // namespace

CpuCore::CpuCore(sim::SimEngine& engine, int node_id, const CpuConfig& config,
                 vm::MemoryLatencyOracle& walk_memory)
    : sim::Component(engine, "node" + std::to_string(node_id) + ".cpu"),
      node_id_(node_id), config_(config),
      mtq_(config.mtq_entries),
      mmu_(name() + ".mmu", config.mmu, walk_memory),
      l1d_(name() + ".l1d", config.l1d),
      l2_(name() + ".l2", config.l2) {}

void CpuCore::set_context(vm::Asid asid, const vm::PageTable* table) {
  asid_ = asid;
  table_ = table;
}

sim::Cycles CpuCore::step(const isa::Instruction& instruction,
                          ExecStats& stats) {
  ++stats.instructions;
  const sim::Cycles cost = issue_cost(instruction.op);

  switch (instruction.op) {
    case isa::Mnemonic::kMaCfg:
    case isa::Mnemonic::kMaMove:
    case isa::Mnemonic::kMaInit:
    case isa::Mnemonic::kMaStash: {
      const auto maid = mtq_.allocate(asid_);
      if (!maid) {
        regs_.write(instruction.rd, kMaidAllocFailed);
        ++stats.mtq_alloc_failures;
        counter("mtq_alloc_failures").inc();
        break;
      }
      regs_.write(instruction.rd, *maid);
      const isa::ParamBlock params = regs_.read_param_block(instruction.rn);
      MACO_ASSERT_MSG(accelerator_ != nullptr,
                      name() << ": MPAIS dispatch without an attached MMAE");
      if (!accelerator_->submit(*maid, instruction.op, params, asid_)) {
        // Slave queue refused (should not happen when STQ mirrors MTQ
        // capacity); surface as an exception so software can recover.
        mtq_.mark_exception(*maid, ExceptionType::kInvalidConfig);
        ++stats.submit_rejections;
      } else {
        ++stats.tasks_dispatched;
        counter("tasks_dispatched").inc();
      }
      break;
    }
    case isa::Mnemonic::kMaRead: {
      const auto maid = static_cast<Maid>(regs_.read(instruction.rn));
      const auto entry = mtq_.read(maid);
      regs_.write(instruction.rd, entry ? pack_state(*entry) : 0);
      break;
    }
    case isa::Mnemonic::kMaState: {
      const auto maid = static_cast<Maid>(regs_.read(instruction.rn));
      const auto entry = mtq_.read_and_release(maid);
      regs_.write(instruction.rd, entry ? pack_state(*entry) : 0);
      break;
    }
    case isa::Mnemonic::kMaClear: {
      const auto maid = static_cast<Maid>(regs_.read(instruction.rn));
      mtq_.clear(maid);
      break;
    }
  }
  stats.cycles += cost;
  return cost;
}

CpuCore::ExecStats CpuCore::execute(
    const std::vector<isa::Instruction>& program) {
  ExecStats stats;
  for (const auto& instruction : program) {
    step(instruction, stats);
  }
  return stats;
}

CpuCore::ExecStats CpuCore::execute_source(std::string_view source) {
  const isa::AsmResult assembled = isa::assemble(source);
  MACO_ASSERT_MSG(assembled.ok(),
                  name() << ": assembly failed: "
                         << (assembled.errors.empty()
                                 ? ""
                                 : assembled.errors.front().message));
  return execute(assembled.program);
}

}  // namespace maco::cpu
