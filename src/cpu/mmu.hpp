// CPU memory-management unit: L1 DTLB (48-entry) backed by the shared
// 1024-entry L2 TLB (sTLB) and a hardware page-table walker.
//
// The MMAE has no MMU of its own (paper Section II: LCA defect (2)); it
// reaches translation through the CPU's sTLB via a customized interface —
// `translate_for_accelerator` models that port (it bypasses the L1 DTLB,
// which stays private to the core's load/store pipeline).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "vm/page_table.hpp"
#include "vm/tlb.hpp"
#include "vm/walker.hpp"

namespace maco::cpu {

struct MmuConfig {
  std::size_t l1_tlb_entries = 48;    // Table I: L1 ITLB/DTLB, fully assoc.
  std::size_t l2_tlb_entries = 1024;  // Table I: L2 TLB, fully assoc.
  sim::TimePs l1_tlb_latency_ps = 0;      // hidden in the pipeline
  sim::TimePs l2_tlb_latency_ps = 1365;   // ~3 CPU cycles @ 2.2 GHz
};

enum class TranslationSource { kL1Tlb, kSharedTlb, kPageWalk, kFault };

struct TranslationResult {
  bool valid = false;
  vm::PhysAddr phys = 0;
  sim::TimePs latency = 0;
  TranslationSource source = TranslationSource::kFault;
};

class Mmu {
 public:
  Mmu(std::string name, const MmuConfig& config,
      vm::MemoryLatencyOracle& walk_memory);

  // Full path: L1 DTLB -> sTLB -> walk.
  TranslationResult translate(vm::Asid asid, const vm::PageTable& table,
                              vm::VirtAddr va);

  // Accelerator path: sTLB -> walk (fills sTLB but not the L1 DTLB).
  TranslationResult translate_for_accelerator(vm::Asid asid,
                                              const vm::PageTable& table,
                                              vm::VirtAddr va);

  void context_switch_flush(vm::Asid old_asid);

  vm::Tlb& l1_tlb() noexcept { return l1_tlb_; }
  vm::Tlb& shared_tlb() noexcept { return shared_tlb_; }
  vm::PageTableWalker& walker() noexcept { return walker_; }

 private:
  TranslationResult walk_and_fill(vm::Asid asid, const vm::PageTable& table,
                                  vm::VirtAddr va, bool fill_l1,
                                  sim::TimePs latency_so_far);

  std::string name_;
  MmuConfig config_;
  vm::Tlb l1_tlb_;
  vm::Tlb shared_tlb_;
  vm::PageTableWalker walker_;
};

}  // namespace maco::cpu
