// Master Task Queue (paper Section III.C, Table III, Fig. 3).
//
// Each CPU core integrates an MTQ whose entries record the execution state
// of dispatched GEMM processes. Entries survive process switches: software
// combines Done and ASID from the queried entry to decide whether its task
// finished even if the entry has since been re-allocated to another process
// (Fig. 3 state 3). Exceptions terminate the task on the MMAE side and are
// surfaced through exception_en/exception_type until MA_CLEAR.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vm/types.hpp"

namespace maco::cpu {

using Maid = std::uint32_t;  // MTQ-entry identifier returned by MA_CFG

enum class ExceptionType : std::uint8_t {
  kNone = 0,
  kPageFault = 1,        // DMA touched an unmapped page
  kInvalidConfig = 2,    // tile larger than MMAE buffers, bad precision...
  kBufferOverflow = 3,   // on-chip buffer capacity exceeded mid-task
  kBusError = 4,         // memory system reported an unrecoverable error
};

const char* exception_type_name(ExceptionType type) noexcept;

struct MtqEntry {
  bool valid = false;       // entry is allocated
  bool done = false;        // task completed
  vm::Asid asid = 0;        // process identifier (paper: NULL when free)
  bool asid_valid = false;  // models the "ASID = NULL" state of Fig. 3
  bool exception_en = false;
  ExceptionType exception_type = ExceptionType::kNone;
};

// Result of an MA_READ / MA_STATE query, packed into Rd by the CPU:
//   [0] valid  [1] done  [2] exception_en  [7:4] exception_type
//   [31:16] ASID  [32] asid_valid
std::uint64_t pack_state(const MtqEntry& entry) noexcept;

class MasterTaskQueue {
 public:
  explicit MasterTaskQueue(unsigned entries = 8);

  // MA_CFG path: allocate a free entry for `asid`; nullopt when full.
  std::optional<Maid> allocate(vm::Asid asid);

  // MMAE completion path.
  void mark_done(Maid maid);
  void mark_exception(Maid maid, ExceptionType type);

  // MA_READ: query state without side effects.
  std::optional<MtqEntry> read(Maid maid) const;

  // MA_STATE: query state and release the entry (Fig. 3: Valid/Done are
  // cleared, the ASID becomes NULL).
  std::optional<MtqEntry> read_and_release(Maid maid);

  // MA_CLEAR: forcibly clear the entry after an exception.
  bool clear(Maid maid);

  unsigned capacity() const noexcept {
    return static_cast<unsigned>(entries_.size());
  }
  unsigned occupied() const noexcept;
  const MtqEntry& entry(Maid maid) const;

  std::uint64_t allocations() const noexcept { return allocations_; }
  std::uint64_t allocation_failures() const noexcept {
    return allocation_failures_;
  }

 private:
  std::vector<MtqEntry> entries_;
  std::uint64_t allocations_ = 0;
  std::uint64_t allocation_failures_ = 0;
};

}  // namespace maco::cpu
