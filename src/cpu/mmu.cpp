#include "cpu/mmu.hpp"

namespace maco::cpu {

Mmu::Mmu(std::string name, const MmuConfig& config,
         vm::MemoryLatencyOracle& walk_memory)
    : name_(std::move(name)), config_(config),
      l1_tlb_(name_ + ".dtlb", config.l1_tlb_entries),
      shared_tlb_(name_ + ".stlb", config.l2_tlb_entries),
      walker_(walk_memory) {}

TranslationResult Mmu::walk_and_fill(vm::Asid asid,
                                     const vm::PageTable& table,
                                     vm::VirtAddr va, bool fill_l1,
                                     sim::TimePs latency_so_far) {
  const vm::WalkOutcome outcome = walker_.walk(asid, table, va);
  TranslationResult result;
  result.latency = latency_so_far + outcome.latency;
  if (!outcome.valid) {
    result.source = TranslationSource::kFault;
    return result;
  }
  result.valid = true;
  result.phys = outcome.phys;
  result.source = TranslationSource::kPageWalk;
  const std::uint64_t vpn = vm::vpn_of(va);
  const std::uint64_t ppn = vm::ppn_of(outcome.phys);
  shared_tlb_.insert(asid, vpn, ppn);
  if (fill_l1) l1_tlb_.insert(asid, vpn, ppn);
  return result;
}

TranslationResult Mmu::translate(vm::Asid asid, const vm::PageTable& table,
                                 vm::VirtAddr va) {
  const std::uint64_t vpn = vm::vpn_of(va);
  if (const auto ppn = l1_tlb_.lookup(asid, vpn)) {
    return TranslationResult{true, (*ppn << vm::kPageBits) |
                                       vm::page_offset(va),
                             config_.l1_tlb_latency_ps,
                             TranslationSource::kL1Tlb};
  }
  if (const auto ppn = shared_tlb_.lookup(asid, vpn)) {
    l1_tlb_.insert(asid, vpn, *ppn);
    return TranslationResult{true, (*ppn << vm::kPageBits) |
                                       vm::page_offset(va),
                             config_.l2_tlb_latency_ps,
                             TranslationSource::kSharedTlb};
  }
  return walk_and_fill(asid, table, va, /*fill_l1=*/true,
                       config_.l2_tlb_latency_ps);
}

TranslationResult Mmu::translate_for_accelerator(vm::Asid asid,
                                                 const vm::PageTable& table,
                                                 vm::VirtAddr va) {
  const std::uint64_t vpn = vm::vpn_of(va);
  if (const auto ppn = shared_tlb_.lookup(asid, vpn)) {
    return TranslationResult{true, (*ppn << vm::kPageBits) |
                                       vm::page_offset(va),
                             config_.l2_tlb_latency_ps,
                             TranslationSource::kSharedTlb};
  }
  return walk_and_fill(asid, table, va, /*fill_l1=*/false,
                       config_.l2_tlb_latency_ps);
}

void Mmu::context_switch_flush(vm::Asid old_asid) {
  // ASID-tagged TLBs need no flush on a context switch; provided for
  // completeness and for tests that model ASID reuse.
  l1_tlb_.invalidate_asid(old_asid);
}

}  // namespace maco::cpu
