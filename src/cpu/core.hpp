// CPU core model (Table I).
//
// The core is modeled at the level this study needs: it architecturally
// executes MPAIS instructions (allocating MTQ entries, marshalling the six
// parameter registers to the MMAE, querying/releasing task state), owns the
// MMU and private caches, and accounts cycles for the instructions it
// issues. General scalar/vector computation is represented by the kernel
// cost models in scalar_kernels.hpp rather than per-instruction simulation —
// Table I's resources (issue width, ports) parameterize those models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/mmu.hpp"
#include "cpu/mtq.hpp"
#include "cpu/scalar_kernels.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/params.hpp"
#include "isa/regfile.hpp"
#include "mem/cache.hpp"
#include "sim/component.hpp"

namespace maco::cpu {

struct CpuConfig {
  double frequency_hz = 2.2e9;   // Table IV
  unsigned issue_width = 4;      // Table I: four-issue
  unsigned pipeline_stages = 12; // Table I: 12+
  mem::CacheConfig l1i{48 * 1024, 4, mem::kLineBytes};   // Table I (48 KiB)
  mem::CacheConfig l1d{48 * 1024, 4, mem::kLineBytes};
  mem::CacheConfig l2{512 * 1024, 8, mem::kLineBytes};   // Table I: private
  MmuConfig mmu;
  unsigned mtq_entries = 8;
  CpuKernelModel kernels;
};

// Sentinel written to Rd when MA_CFG finds no free MTQ entry.
inline constexpr std::uint64_t kMaidAllocFailed = ~0ull;

// The CPU's view of its associated MMAE: submit a command, get completion
// through the MTQ (the MMAE holds a reference to it).
class AcceleratorPort {
 public:
  virtual ~AcceleratorPort() = default;
  // Returns false if the slave queue cannot accept the command.
  virtual bool submit(Maid maid, isa::Mnemonic op,
                      const isa::ParamBlock& params, vm::Asid asid) = 0;
};

class CpuCore : public sim::Component {
 public:
  CpuCore(sim::SimEngine& engine, int node_id, const CpuConfig& config,
          vm::MemoryLatencyOracle& walk_memory);

  int node_id() const noexcept { return node_id_; }
  const CpuConfig& config() const noexcept { return config_; }

  void attach_accelerator(AcceleratorPort* port) noexcept {
    accelerator_ = port;
  }

  // Current process context (set by the simulated OS on a context switch).
  void set_context(vm::Asid asid, const vm::PageTable* table);
  vm::Asid current_asid() const noexcept { return asid_; }
  const vm::PageTable* current_table() const noexcept { return table_; }

  isa::RegFile& regs() noexcept { return regs_; }
  MasterTaskQueue& mtq() noexcept { return mtq_; }
  Mmu& mmu() noexcept { return mmu_; }
  mem::SetAssocCache& l1d() noexcept { return l1d_; }
  mem::SetAssocCache& l2() noexcept { return l2_; }
  const CpuKernelModel& kernels() const noexcept { return config_.kernels; }

  struct ExecStats {
    std::uint64_t instructions = 0;
    std::uint64_t tasks_dispatched = 0;
    std::uint64_t mtq_alloc_failures = 0;
    std::uint64_t submit_rejections = 0;
    sim::Cycles cycles = 0;
  };

  // Executes one MPAIS instruction; returns issue cycles consumed.
  sim::Cycles step(const isa::Instruction& instruction, ExecStats& stats);

  // Executes a whole program front to back.
  ExecStats execute(const std::vector<isa::Instruction>& program);

  // Convenience: assemble and execute MPAIS source (asserts clean assembly).
  ExecStats execute_source(std::string_view source);

  sim::TimePs cycles_to_ps(sim::Cycles cycles) const noexcept {
    return static_cast<sim::TimePs>(
        static_cast<double>(cycles) * 1e12 / config_.frequency_hz);
  }

 private:
  int node_id_;
  CpuConfig config_;
  isa::RegFile regs_;
  MasterTaskQueue mtq_;
  Mmu mmu_;
  mem::SetAssocCache l1d_;
  mem::SetAssocCache l2_;
  AcceleratorPort* accelerator_ = nullptr;
  vm::Asid asid_ = 0;
  const vm::PageTable* table_ = nullptr;
};

}  // namespace maco::cpu
