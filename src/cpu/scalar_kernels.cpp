#include "cpu/scalar_kernels.hpp"

#include <algorithm>
#include <cmath>

namespace maco::cpu {

namespace {

// Elements processed per cycle for a streaming element-wise op that reads
// and writes each element once: bounded by lanes and by load/store bandwidth.
double streaming_elements_per_cycle(const CpuKernelModel& m,
                                    sa::Precision p) {
  const double lanes =
      static_cast<double>(m.vector_lanes_fp64) * sa::simd_ways(p);
  const double bytes = sa::element_bytes(p);
  const double load_limit = m.load_bytes_per_cycle / bytes;
  const double store_limit = m.store_bytes_per_cycle / bytes;
  return std::min({lanes, load_limit, store_limit});
}

}  // namespace

sim::Cycles CpuKernelModel::gemm_cycles(std::uint64_t m, std::uint64_t n,
                                        std::uint64_t k,
                                        sa::Precision p) const noexcept {
  const double macs = static_cast<double>(m) * n * k;
  const double rate =
      static_cast<double>(macs_per_cycle(p)) * gemm_software_efficiency;
  return static_cast<sim::Cycles>(std::ceil(macs / rate));
}

sim::Cycles CpuKernelModel::softmax_cycles(std::uint64_t rows,
                                           std::uint64_t cols,
                                           sa::Precision p) const noexcept {
  // Four passes over the row (max, exp+sum, scale) but exp dominates.
  const double elements = static_cast<double>(rows) * cols;
  const double stream = streaming_elements_per_cycle(*this, p);
  const double pass_cycles = 3.0 * elements / stream;
  const double exp_cycles = elements / special_func_per_cycle;
  return static_cast<sim::Cycles>(std::ceil(pass_cycles + exp_cycles));
}

sim::Cycles CpuKernelModel::layernorm_cycles(std::uint64_t rows,
                                             std::uint64_t cols,
                                             sa::Precision p) const noexcept {
  const double elements = static_cast<double>(rows) * cols;
  const double stream = streaming_elements_per_cycle(*this, p);
  // mean + variance passes, then normalize+affine pass with one sqrt/row.
  const double pass_cycles = 3.0 * elements / stream;
  const double sqrt_cycles = static_cast<double>(rows) / special_func_per_cycle;
  return static_cast<sim::Cycles>(std::ceil(pass_cycles + sqrt_cycles));
}

sim::Cycles CpuKernelModel::gelu_cycles(std::uint64_t elements,
                                        sa::Precision p) const noexcept {
  const double stream = streaming_elements_per_cycle(*this, p);
  const double tanh_cycles =
      static_cast<double>(elements) / special_func_per_cycle;
  return static_cast<sim::Cycles>(
      std::ceil(static_cast<double>(elements) / stream + tanh_cycles));
}

sim::Cycles CpuKernelModel::relu_cycles(std::uint64_t elements,
                                        sa::Precision p) const noexcept {
  const double stream = streaming_elements_per_cycle(*this, p);
  return static_cast<sim::Cycles>(
      std::ceil(static_cast<double>(elements) / stream));
}

sim::Cycles CpuKernelModel::bias_add_cycles(std::uint64_t elements,
                                            sa::Precision p) const noexcept {
  const double stream = streaming_elements_per_cycle(*this, p);
  return static_cast<sim::Cycles>(
      std::ceil(static_cast<double>(elements) / stream));
}

sim::Cycles CpuKernelModel::embedding_lookup_cycles(
    std::uint64_t lookups, std::uint64_t dim, sa::Precision p) const noexcept {
  // Gather-dominated: each row costs its streaming bytes plus a dependent
  // index load (~4 cycles of address generation not hidden by the OoO core).
  const double stream = streaming_elements_per_cycle(*this, p);
  const double stream_cycles =
      static_cast<double>(lookups) * dim / stream;
  const double index_cycles = 4.0 * static_cast<double>(lookups);
  return static_cast<sim::Cycles>(std::ceil(stream_cycles + index_cycles));
}

}  // namespace maco::cpu
