#include "cpu/mtq.hpp"

#include "util/assert.hpp"

namespace maco::cpu {

const char* exception_type_name(ExceptionType type) noexcept {
  switch (type) {
    case ExceptionType::kNone: return "none";
    case ExceptionType::kPageFault: return "page_fault";
    case ExceptionType::kInvalidConfig: return "invalid_config";
    case ExceptionType::kBufferOverflow: return "buffer_overflow";
    case ExceptionType::kBusError: return "bus_error";
  }
  return "?";
}

std::uint64_t pack_state(const MtqEntry& entry) noexcept {
  std::uint64_t word = 0;
  word |= entry.valid ? 1ull : 0ull;
  word |= entry.done ? (1ull << 1) : 0ull;
  word |= entry.exception_en ? (1ull << 2) : 0ull;
  word |= static_cast<std::uint64_t>(entry.exception_type) << 4;
  word |= static_cast<std::uint64_t>(entry.asid) << 16;
  word |= entry.asid_valid ? (1ull << 32) : 0ull;
  return word;
}

MasterTaskQueue::MasterTaskQueue(unsigned entries) : entries_(entries) {
  MACO_ASSERT_MSG(entries > 0, "MTQ needs at least one entry");
}

std::optional<Maid> MasterTaskQueue::allocate(vm::Asid asid) {
  for (Maid maid = 0; maid < entries_.size(); ++maid) {
    MtqEntry& e = entries_[maid];
    if (!e.valid) {
      e = MtqEntry{};
      e.valid = true;
      e.asid = asid;
      e.asid_valid = true;
      ++allocations_;
      return maid;
    }
  }
  ++allocation_failures_;
  return std::nullopt;
}

void MasterTaskQueue::mark_done(Maid maid) {
  MACO_ASSERT_MSG(maid < entries_.size(), "MAID " << maid);
  MtqEntry& e = entries_[maid];
  MACO_ASSERT_MSG(e.valid, "completion for unallocated MTQ entry " << maid);
  e.done = true;
}

void MasterTaskQueue::mark_exception(Maid maid, ExceptionType type) {
  MACO_ASSERT_MSG(maid < entries_.size(), "MAID " << maid);
  MtqEntry& e = entries_[maid];
  MACO_ASSERT_MSG(e.valid, "exception for unallocated MTQ entry " << maid);
  // Fig. 3 state 4: the MMAE terminated the task; Done is set with the
  // exception flag so software knows to check the type and MA_CLEAR.
  e.done = true;
  e.exception_en = true;
  e.exception_type = type;
}

std::optional<MtqEntry> MasterTaskQueue::read(Maid maid) const {
  if (maid >= entries_.size()) return std::nullopt;
  return entries_[maid];
}

std::optional<MtqEntry> MasterTaskQueue::read_and_release(Maid maid) {
  if (maid >= entries_.size()) return std::nullopt;
  const MtqEntry snapshot = entries_[maid];
  // Release only a completed, exception-free entry; an exception entry must
  // be cleared explicitly with MA_CLEAR (Fig. 3 state 4).
  if (snapshot.valid && snapshot.done && !snapshot.exception_en) {
    entries_[maid] = MtqEntry{};
  }
  return snapshot;
}

bool MasterTaskQueue::clear(Maid maid) {
  if (maid >= entries_.size()) return false;
  entries_[maid] = MtqEntry{};
  return true;
}

unsigned MasterTaskQueue::occupied() const noexcept {
  unsigned count = 0;
  for (const auto& e : entries_) count += e.valid ? 1 : 0;
  return count;
}

const MtqEntry& MasterTaskQueue::entry(Maid maid) const {
  MACO_ASSERT_MSG(maid < entries_.size(), "MAID " << maid);
  return entries_[maid];
}

}  // namespace maco::cpu
