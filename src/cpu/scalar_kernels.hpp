// CPU-side kernel cost models.
//
// The CPU core (Table I: 4-issue OoO, 2×256-bit vector FMA pipes -> 8 FP64
// FMACs, Table IV: 35.2 GFLOPS FP64 / 71 GFLOPS FP32 peak) executes the
// non-GEMM parts of GEMM+ workloads (softmax, layernorm, activations) and,
// in Baseline-1, the GEMM itself. These are analytic cycle models: work is
// decomposed into vector flops, loads/stores and special-function ops, each
// bounded by the corresponding issue resource.
//
// The GEMM software efficiency constant is calibrated so Baseline-1
// reproduces the paper's 3.3× MACO-vs-CPU-only gap (see EXPERIMENTS.md);
// everything else follows from first-principles resource counts.
#pragma once

#include <cstdint>

#include "sa/types.hpp"
#include "sim/time.hpp"

namespace maco::cpu {

struct CpuKernelModel {
  double frequency_hz = 2.2e9;
  unsigned fp64_fmacs = 8;        // per cycle; FP32 doubles, FP16 quadruples
  unsigned vector_lanes_fp64 = 8; // element-wise ops per cycle
  unsigned load_bytes_per_cycle = 64;   // 2×256-bit load ports
  unsigned store_bytes_per_cycle = 32;  // 1×256-bit store port
  // Sustained fraction of peak for compiled (non-hand-tuned) GEMM kernels,
  // including register-blocking and cache-blocking losses.
  double gemm_software_efficiency = 0.30;
  // Special-function (exp, tanh, sqrt) throughput, elements per cycle.
  double special_func_per_cycle = 2.0;

  unsigned macs_per_cycle(sa::Precision p) const noexcept {
    return fp64_fmacs * sa::simd_ways(p);
  }
  double peak_flops(sa::Precision p) const noexcept {
    return 2.0 * frequency_hz * macs_per_cycle(p);
  }

  // Software GEMM: C (m×n) += A (m×k) B (k×n).
  sim::Cycles gemm_cycles(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                          sa::Precision p) const noexcept;

  // Row-wise softmax over a rows×cols matrix (max, exp, sum, scale).
  sim::Cycles softmax_cycles(std::uint64_t rows, std::uint64_t cols,
                             sa::Precision p) const noexcept;

  // LayerNorm over rows of length cols (mean, variance, normalize, affine).
  sim::Cycles layernorm_cycles(std::uint64_t rows, std::uint64_t cols,
                               sa::Precision p) const noexcept;

  // Element-wise activations.
  sim::Cycles gelu_cycles(std::uint64_t elements,
                          sa::Precision p) const noexcept;
  sim::Cycles relu_cycles(std::uint64_t elements,
                          sa::Precision p) const noexcept;
  sim::Cycles bias_add_cycles(std::uint64_t elements,
                              sa::Precision p) const noexcept;

  // Embedding-table gather: `lookups` rows of `dim` elements (the
  // recommender-system scenario from the paper's introduction).
  sim::Cycles embedding_lookup_cycles(std::uint64_t lookups,
                                      std::uint64_t dim,
                                      sa::Precision p) const noexcept;

  sim::TimePs cycles_to_ps(sim::Cycles cycles) const noexcept {
    return static_cast<sim::TimePs>(
        static_cast<double>(cycles) * 1e12 / frequency_hz);
  }
};

}  // namespace maco::cpu
